//! Tiered buffer-pool management — the paper's second named future-work
//! item, implemented.
//!
//! "The next steps for the Farview project are ... to design suitable
//! cache management strategies to move data back and forth to persistent
//! storage" (§7). The buffer pool in disaggregated DRAM then behaves the
//! way §3 describes ("can be used as regular memory, with blocks/pages
//! being loaded from storage as needed"):
//!
//! * [`BlockStore`] — a calibrated NVMe-class storage model holding the
//!   cold table images (functional bytes + read/write timing).
//! * [`TieredPool`] — an LRU cache manager over one connection's slice
//!   of the disaggregated memory: queries against cold tables stage them
//!   in from storage (evicting least-recently-used residents when the
//!   DRAM budget is exceeded) and then run the offloaded pipeline.
//! * [`FleetTieredPool`] — the same manager at **fleet** scope: staged
//!   tables scatter across the fleet under the topology's *current*
//!   epoch, and a resident staged before a membership change is
//!   restaged into the new placement the next time it is queried (cold
//!   data always lands on the shard set that exists *now*, not the one
//!   that existed when it was first registered).
//!
//! Query results are identical whether a table was hot or cold; only the
//! reported time differs (staging cost surfaces in [`TierOutcome`] /
//! [`FleetTierOutcome`]).
//!
//! Budgets are best-effort admission bounds: a table larger than the
//! remaining budget (including a zero budget) still stages — the pool
//! cannot answer the query otherwise — and becomes the first eviction
//! victim once the next staging needs room.

use std::collections::HashMap;

use fv_data::Table;
use fv_sim::{calib, SimDuration};

use crate::cluster::{FTable, QPair, QueryOutcome};
use crate::error::FvError;
use crate::fleet::{FleetQPair, FleetQueryOutcome, FleetTable, Partitioning};
use crate::plan::Executor;
use crate::PipelineSpec;

/// NVMe-class device parameters: ~80 µs access latency, ~3 GB/s
/// sequential bandwidth (datacenter TLC flash; the paper's storage layer
/// is unspecified, so a stock SSD stands in).
#[derive(Debug, Clone, Copy)]
pub struct StorageParams {
    /// Per-request access latency.
    pub access_latency: SimDuration,
    /// Sequential bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl Default for StorageParams {
    fn default() -> Self {
        StorageParams {
            access_latency: SimDuration::from_micros(80),
            bandwidth: 3.0e9,
        }
    }
}

/// A named block store holding cold table images.
#[derive(Debug, Default)]
pub struct BlockStore {
    params: StorageParams,
    objects: HashMap<String, Vec<u8>>,
    reads: u64,
    writes: u64,
}

impl BlockStore {
    /// A store with the given device parameters.
    pub fn new(params: StorageParams) -> Self {
        BlockStore {
            params,
            ..BlockStore::default()
        }
    }

    /// Persist an object; returns the simulated write time.
    pub fn put(&mut self, name: &str, bytes: Vec<u8>) -> SimDuration {
        self.writes += 1;
        let t = self.params.access_latency
            + calib::transfer(bytes.len().max(1) as u64, self.params.bandwidth);
        self.objects.insert(name.to_string(), bytes);
        t
    }

    /// Fetch an object; returns the bytes and the simulated read time.
    pub fn get(&mut self, name: &str) -> Option<(Vec<u8>, SimDuration)> {
        let bytes = self.objects.get(name)?.clone();
        self.reads += 1;
        let t = self.params.access_latency
            + calib::transfer(bytes.len().max(1) as u64, self.params.bandwidth);
        Some((bytes, t))
    }

    /// `(reads, writes)` served.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// Outcome of a tiered query: the query result plus the tier activity
/// that preceded it.
#[derive(Debug)]
pub struct TierOutcome {
    /// The query result (identical hot or cold).
    pub outcome: QueryOutcome,
    /// Whether the table was already resident in disaggregated DRAM.
    pub buffer_hit: bool,
    /// Time spent staging the table in from storage (device read + write
    /// into the disaggregated buffer pool). Zero on a hit.
    pub stage_in_time: SimDuration,
    /// Tables evicted to make room.
    pub evictions: Vec<String>,
}

impl TierOutcome {
    /// Total client-observed time: staging (if any) plus the query.
    pub fn total_time(&self) -> SimDuration {
        self.stage_in_time + self.outcome.stats.response_time
    }
}

struct Resident {
    ft: FTable,
    bytes: u64,
    /// LRU stamp.
    last_use: u64,
}

/// An LRU-managed slice of the disaggregated buffer pool backed by a
/// [`BlockStore`].
pub struct TieredPool<'a> {
    qp: &'a QPair,
    store: BlockStore,
    /// DRAM budget this pool may occupy, in bytes.
    capacity: u64,
    resident: HashMap<String, Resident>,
    resident_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for TieredPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredPool")
            .field("capacity", &self.capacity)
            .field("resident_bytes", &self.resident_bytes)
            .field("resident", &self.resident.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl<'a> TieredPool<'a> {
    /// A pool over `qp`'s connection with the given DRAM budget. A zero
    /// budget is legal: every staged table then exceeds the budget, so
    /// each new staging evicts whatever the previous one brought in.
    pub fn new(qp: &'a QPair, capacity_bytes: u64, store: BlockStore) -> Self {
        TieredPool {
            qp,
            store,
            capacity: capacity_bytes,
            resident: HashMap::new(),
            resident_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Register a table: persisted to storage, *not* staged into DRAM
    /// until first use ("blocks/pages being loaded from storage as
    /// needed", §3).
    ///
    /// # Panics
    /// Panics unless `table` uses the paper-default staged schema
    /// (8 × 8-byte attributes) — see [`staged_schema`].
    pub fn insert(&mut self, name: &str, table: &Table) -> SimDuration {
        check_staged_schema(table);
        self.store.put(name, table.bytes().to_vec())
    }

    /// Is `name` currently resident in disaggregated DRAM?
    pub fn is_resident(&self, name: &str) -> bool {
        self.resident.contains_key(name)
    }

    /// `(hits, misses)` so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Evict the least-recently-used resident table; returns its name.
    fn evict_one(&mut self) -> Result<String, FvError> {
        let victim = self
            .resident
            .iter()
            .min_by_key(|(_, r)| r.last_use)
            .map(|(n, _)| n.clone())
            .expect("evict_one called with residents");
        let r = self.resident.remove(&victim).expect("victim resident");
        self.resident_bytes -= r.bytes;
        // Read-only buffer pool (§4.2): no write-back needed, the
        // storage copy is authoritative.
        self.qp.free_table(r.ft)?;
        Ok(victim)
    }

    /// Run `spec` against `name`, staging it in from storage if cold.
    /// Residency management lives here; the query itself runs through
    /// the shared [`Executor`] like every other entry point.
    pub fn query(&mut self, name: &str, spec: &PipelineSpec) -> Result<TierOutcome, FvError> {
        self.clock += 1;
        if let Some(r) = self.resident.get_mut(name) {
            r.last_use = self.clock;
            self.hits += 1;
            let ft = r.ft.clone();
            let outcome = Executor::single(self.qp, &ft, spec)?;
            return Ok(TierOutcome {
                outcome,
                buffer_hit: true,
                stage_in_time: SimDuration::ZERO,
                evictions: Vec::new(),
            });
        }
        self.misses += 1;
        let (bytes, read_time) = self.store.get(name).ok_or_else(|| FvError::NotInStorage {
            name: name.to_string(),
        })?;
        let table = Table::from_bytes(staged_schema(), bytes);

        // Make room under the DRAM budget.
        let need = table.byte_len() as u64;
        let mut evictions = Vec::new();
        while self.resident_bytes + need > self.capacity && !self.resident.is_empty() {
            evictions.push(self.evict_one()?);
        }

        let (ft, write_time) = self.qp.load_table(&table)?;
        self.resident.insert(
            name.to_string(),
            Resident {
                ft: ft.clone(),
                bytes: need,
                last_use: self.clock,
            },
        );
        self.resident_bytes += need;

        let outcome = Executor::single(self.qp, &ft, spec)?;
        Ok(TierOutcome {
            outcome,
            buffer_hit: false,
            stage_in_time: read_time + write_time,
            evictions,
        })
    }
}

/// The one schema cold images are staged with: the paper's default row
/// format (8 × 8-byte attributes, §6.2). Both tier pools rehydrate
/// storage bytes through this; generalizing to a persisted per-object
/// schema catalog is mechanical but not needed by any experiment.
pub fn staged_schema() -> fv_data::Schema {
    fv_data::Schema::uniform_u64(8)
}

/// Reject tables the tier cannot rehydrate — catching the mismatch at
/// `insert` time instead of panicking (or silently mis-decoding rows)
/// at first query.
fn check_staged_schema(table: &Table) {
    assert_eq!(
        table.schema(),
        &staged_schema(),
        "tiered pools stage the paper-default 8 x u64 schema only"
    );
}

/// Outcome of one fleet-tier query: the merged fleet result plus the
/// tier activity that preceded it.
#[derive(Debug)]
pub struct FleetTierOutcome {
    /// The merged fleet query result (identical hot or cold).
    pub outcome: FleetQueryOutcome,
    /// Whether the table was already resident under a still-current
    /// placement.
    pub buffer_hit: bool,
    /// Whether a resident copy existed but its placement had gone
    /// stale and it was re-scattered into the current shard set.
    pub restaged: bool,
    /// Time spent staging the table in from storage (device read + the
    /// slowest shard's scatter write). Zero on a hit.
    pub stage_in_time: SimDuration,
    /// Tables evicted to make room.
    pub evictions: Vec<String>,
}

impl FleetTierOutcome {
    /// Total client-observed time: staging (if any) plus the query.
    pub fn total_time(&self) -> SimDuration {
        self.stage_in_time + self.outcome.merged.stats.response_time
    }
}

struct FleetResident {
    ft: FleetTable,
    bytes: u64,
    /// LRU stamp.
    last_use: u64,
}

/// An LRU-managed tier over a whole fleet connection, backed by a
/// [`BlockStore`]. The elastic-topology twist: residency is checked
/// against the topology **epoch**, so a table staged before an
/// `add_node`/`drain_node`/`remove_node` is transparently restaged into
/// the *current* placement on its next query — cold data always lands
/// on the shard set that exists now.
pub struct FleetTieredPool<'a> {
    fqp: &'a FleetQPair,
    store: BlockStore,
    /// DRAM budget this pool may occupy across the fleet, in bytes.
    capacity: u64,
    /// Partitioning for every staged table.
    partitioning: Partitioning,
    resident: HashMap<String, FleetResident>,
    resident_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    restages: u64,
}

impl std::fmt::Debug for FleetTieredPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTieredPool")
            .field("capacity", &self.capacity)
            .field("resident_bytes", &self.resident_bytes)
            .field("resident", &self.resident.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("restages", &self.restages)
            .finish()
    }
}

impl<'a> FleetTieredPool<'a> {
    /// A pool over `fqp` with the given fleet-wide DRAM budget; every
    /// staged table scatters under `partitioning`.
    pub fn new(
        fqp: &'a FleetQPair,
        capacity_bytes: u64,
        partitioning: Partitioning,
        store: BlockStore,
    ) -> Self {
        FleetTieredPool {
            fqp,
            store,
            capacity: capacity_bytes,
            partitioning,
            resident: HashMap::new(),
            resident_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            restages: 0,
        }
    }

    /// Register a table: persisted to storage, *not* staged into DRAM
    /// until first use.
    ///
    /// # Panics
    /// Panics unless `table` uses the paper-default staged schema
    /// (8 × 8-byte attributes) — see [`staged_schema`].
    pub fn insert(&mut self, name: &str, table: &Table) -> SimDuration {
        check_staged_schema(table);
        self.store.put(name, table.bytes().to_vec())
    }

    /// Is `name` currently resident (at any epoch)?
    pub fn is_resident(&self, name: &str) -> bool {
        self.resident.contains_key(name)
    }

    /// The epoch `name`'s resident copy was placed at, if resident.
    pub fn resident_epoch(&self, name: &str) -> Option<u64> {
        self.resident.get(name).map(|r| r.ft.epoch())
    }

    /// `(hits, misses)` so far (a restage counts as a miss).
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Residents restaged because their placement epoch went stale.
    pub fn restages(&self) -> u64 {
        self.restages
    }

    /// Evict the least-recently-used resident; returns its name.
    fn evict_one(&mut self) -> Result<String, FvError> {
        let victim = self
            .resident
            .iter()
            .min_by_key(|(_, r)| r.last_use)
            .map(|(n, _)| n.clone())
            .expect("evict_one called with residents");
        let r = self.resident.remove(&victim).expect("victim resident");
        self.resident_bytes -= r.bytes;
        // Read-only buffer pool (§4.2): no write-back needed, the
        // storage copy is authoritative.
        self.fqp.free_table(r.ft)?;
        Ok(victim)
    }

    /// Run `spec` against `name`, staging it in from storage if cold —
    /// or **restaging** it if its resident placement no longer matches
    /// what the current Active set computes. Staleness is a property of
    /// the *placement*, not the raw epoch: membership changes that
    /// cancelled out (a node added and removed again) leave residents
    /// hot.
    pub fn query(&mut self, name: &str, spec: &PipelineSpec) -> Result<FleetTierOutcome, FvError> {
        self.clock += 1;
        let mut restaged = false;
        if let Some(r) = self.resident.get_mut(name) {
            if self.fqp.placement_is_current(r.ft.placement()) {
                r.last_use = self.clock;
                self.hits += 1;
                let ft = r.ft.clone();
                let outcome = self.fqp.far_view(&ft, spec)?;
                return Ok(FleetTierOutcome {
                    outcome,
                    buffer_hit: true,
                    restaged: false,
                    stage_in_time: SimDuration::ZERO,
                    evictions: Vec::new(),
                });
            }
            // Stale placement: drop the old copy and fall through to
            // the staging path so the table lands on the current shard
            // set.
            restaged = true;
            self.restages += 1;
            let r = self.resident.remove(name).expect("checked resident");
            self.resident_bytes -= r.bytes;
            self.fqp.free_table(r.ft)?;
        }
        self.misses += 1;
        let (bytes, read_time) = self.store.get(name).ok_or_else(|| FvError::NotInStorage {
            name: name.to_string(),
        })?;
        let table = Table::from_bytes(staged_schema(), bytes);

        // Make room under the fleet-wide DRAM budget.
        let need = table.byte_len() as u64;
        let mut evictions = Vec::new();
        while self.resident_bytes + need > self.capacity && !self.resident.is_empty() {
            evictions.push(self.evict_one()?);
        }

        let (ft, write_time) = self.fqp.load_table(&table, self.partitioning)?;
        self.resident.insert(
            name.to_string(),
            FleetResident {
                ft: ft.clone(),
                bytes: need,
                last_use: self.clock,
            },
        );
        self.resident_bytes += need;

        let outcome = self.fqp.far_view(&ft, spec)?;
        Ok(FleetTierOutcome {
            outcome,
            buffer_hit: false,
            restaged,
            stage_in_time: read_time + write_time,
            evictions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FarviewCluster, FarviewConfig};
    use fv_pipeline::PredicateExpr;

    fn table(seed: u64, bytes: u64) -> Table {
        fv_workload::TableGen::paper_default(bytes)
            .seed(seed)
            .build()
    }

    #[test]
    fn cold_query_stages_in_then_hits() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 8 << 20, BlockStore::new(StorageParams::default()));
        let t = table(1, 256 << 10);
        pool.insert("orders", &t);
        assert!(!pool.is_resident("orders"));

        let cold = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(!cold.buffer_hit);
        assert!(cold.stage_in_time > SimDuration::from_micros(80));
        assert_eq!(cold.outcome.payload, t.bytes());
        assert!(pool.is_resident("orders"));

        let hot = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(hot.buffer_hit);
        assert_eq!(hot.stage_in_time, SimDuration::ZERO);
        assert_eq!(hot.outcome.payload, t.bytes());
        assert!(hot.total_time() < cold.total_time());
        assert_eq!(pool.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        // Budget for two 1 MB tables.
        let mut pool = TieredPool::new(&qp, 2 << 20, BlockStore::default());
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            pool.insert(name, &table(i as u64, 1 << 20));
        }
        pool.query("a", &PipelineSpec::passthrough()).unwrap();
        pool.query("b", &PipelineSpec::passthrough()).unwrap();
        // Touch "a" so "b" is the LRU victim.
        pool.query("a", &PipelineSpec::passthrough()).unwrap();
        let out = pool.query("c", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(out.evictions, vec!["b".to_string()], "LRU must evict b");
        assert!(pool.is_resident("a"));
        assert!(!pool.is_resident("b"));
        assert!(pool.is_resident("c"));
        assert!(pool.resident_bytes() <= 2 << 20);

        // "b" stages back in, evicting the now-LRU "a".
        let back = pool.query("b", &PipelineSpec::passthrough()).unwrap();
        assert!(!back.buffer_hit);
        assert_eq!(back.evictions, vec!["a".to_string()]);
    }

    #[test]
    fn query_results_identical_hot_and_cold() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 4 << 20, BlockStore::default());
        let t = table(9, 512 << 10);
        pool.insert("t", &t);
        let spec = PipelineSpec::passthrough().filter(PredicateExpr::lt(0, 1u64 << 62));
        let cold = pool.query("t", &spec).unwrap();
        let hot = pool.query("t", &spec).unwrap();
        assert_eq!(cold.outcome.payload, hot.outcome.payload);
        assert_eq!(
            cold.outcome.stats.response_time, hot.outcome.stats.response_time,
            "only staging differs, not the query itself"
        );
    }

    #[test]
    fn eviction_returns_pages_to_the_pool() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let baseline = cluster.free_pages();
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default());
        pool.insert("x", &table(1, 1 << 20));
        pool.insert("y", &table(2, 1 << 20));
        pool.query("x", &PipelineSpec::passthrough()).unwrap();
        pool.query("y", &PipelineSpec::passthrough()).unwrap(); // evicts x
        assert_eq!(
            cluster.free_pages(),
            baseline - 1,
            "only one staged table may hold pages at a time"
        );
    }

    #[test]
    fn zero_budget_stages_every_query_and_evicts_the_previous() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let baseline = cluster.free_pages();
        let mut pool = TieredPool::new(&qp, 0, BlockStore::default());
        let a = table(1, 256 << 10);
        let b = table(2, 256 << 10);
        pool.insert("a", &a);
        pool.insert("b", &b);

        let out_a = pool.query("a", &PipelineSpec::passthrough()).unwrap();
        assert!(!out_a.buffer_hit);
        assert_eq!(
            out_a.outcome.payload,
            a.bytes(),
            "over-budget staging still answers"
        );
        assert!(pool.is_resident("a"), "best-effort admission");

        // The next distinct table evicts the over-budget resident.
        let out_b = pool.query("b", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(out_b.evictions, vec!["a".to_string()]);
        assert_eq!(out_b.outcome.payload, b.bytes());
        assert!(!pool.is_resident("a"));
        assert!(pool.is_resident("b"));
        assert_eq!(
            cluster.free_pages(),
            baseline - 1,
            "at most one over-budget resident holds pages"
        );
    }

    #[test]
    fn single_table_larger_than_budget_still_stages() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        // 1 MB table against a 256 kB budget.
        let mut pool = TieredPool::new(&qp, 256 << 10, BlockStore::default());
        let big = table(3, 1 << 20);
        let small = table(4, 256 << 10);
        pool.insert("big", &big);
        pool.insert("small", &small);

        let out = pool.query("big", &PipelineSpec::passthrough()).unwrap();
        assert!(!out.buffer_hit);
        assert!(out.evictions.is_empty(), "nothing resident to evict");
        assert_eq!(out.outcome.payload, big.bytes());
        assert!(pool.resident_bytes() > 256 << 10, "admitted over budget");

        // It is the first victim once anything else needs room.
        let next = pool.query("small", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(next.evictions, vec!["big".to_string()]);
        assert!(pool.resident_bytes() <= 256 << 10);
    }

    #[test]
    fn requery_after_eviction_is_byte_identical_and_repays_staging() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default());
        let a = table(5, 1 << 20);
        let b = table(6, 1 << 20);
        pool.insert("a", &a);
        pool.insert("b", &b);
        let spec = PipelineSpec::passthrough().filter(PredicateExpr::lt(0, 1u64 << 62));

        let first = pool.query("a", &spec).unwrap();
        assert!(first.stage_in_time > SimDuration::ZERO);
        pool.query("b", &spec).unwrap(); // evicts a
        assert!(!pool.is_resident("a"));

        let again = pool.query("a", &spec).unwrap();
        assert!(!again.buffer_hit, "evicted table must re-stage");
        assert_eq!(
            again.stage_in_time, first.stage_in_time,
            "staging cost is re-paid in full"
        );
        assert_eq!(
            again.outcome.payload, first.outcome.payload,
            "results stay byte-identical across evict + restage"
        );
        assert_eq!(pool.hit_stats(), (0, 3));
    }

    #[test]
    fn fleet_tier_restages_into_the_current_placement() {
        use crate::fleet::{FarviewFleet, Partitioning};
        let fleet = FarviewFleet::new(2, FarviewConfig::tiny());
        let qp = fleet.connect().unwrap();
        let mut pool =
            FleetTieredPool::new(&qp, 8 << 20, Partitioning::RowRange, BlockStore::default());
        let t = table(7, 512 << 10);
        pool.insert("orders", &t);

        let cold = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(!cold.buffer_hit);
        assert!(!cold.restaged);
        assert_eq!(cold.outcome.merged.payload, t.bytes());
        assert_eq!(cold.outcome.per_shard.len(), 2);
        assert_eq!(pool.resident_epoch("orders"), Some(0));

        let hot = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(hot.buffer_hit);
        assert_eq!(hot.stage_in_time, SimDuration::ZERO);

        // Membership churn that cancels out (add then remove the same
        // node) leaves the placement current — no restage.
        let transient = fleet.add_node();
        fleet.remove_node(transient).unwrap();
        let still_hot = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(still_hot.buffer_hit, "cancelled-out churn must stay hot");

        // Grow the fleet for real: the resident's placement goes stale,
        // so the next query restages into the *current* 4-node
        // placement.
        fleet.add_node();
        fleet.add_node();
        let restaged = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(restaged.restaged, "stale epoch must trigger a restage");
        assert!(!restaged.buffer_hit);
        assert!(
            restaged.stage_in_time > SimDuration::ZERO,
            "staging re-paid"
        );
        assert_eq!(
            restaged.outcome.per_shard.len(),
            4,
            "cold data lands on the shard set that exists now"
        );
        assert_eq!(restaged.outcome.merged.payload, t.bytes());
        assert_eq!(pool.resident_epoch("orders"), Some(fleet.epoch()));
        assert_eq!(pool.restages(), 1);
        assert_eq!(pool.hit_stats(), (2, 2));
    }

    #[test]
    #[should_panic(expected = "paper-default 8 x u64 schema")]
    fn non_default_schema_is_rejected_at_insert() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default());
        // A 3-column table cannot be rehydrated by the tier's staged
        // schema — insert must reject it up front.
        let mut b = fv_data::TableBuilder::new(fv_data::Schema::uniform_u64(3));
        b.push_values(vec![
            fv_data::Value::U64(1),
            fv_data::Value::U64(2),
            fv_data::Value::U64(3),
        ]);
        pool.insert("bad", &b.build());
    }

    #[test]
    fn storage_io_is_counted_and_timed() {
        let mut store = BlockStore::new(StorageParams {
            access_latency: SimDuration::from_micros(100),
            bandwidth: 1.0e9,
        });
        let wt = store.put("obj", vec![0u8; 1_000_000]);
        // 100 µs + 1 MB at 1 GB/s = 1.1 ms.
        assert_eq!(wt.as_nanos(), 100_000 + 1_000_000);
        let (bytes, rt) = store.get("obj").unwrap();
        assert_eq!(bytes.len(), 1_000_000);
        assert_eq!(rt, wt);
        assert_eq!(store.io_counts(), (1, 1));
        assert!(store.get("missing").is_none());
    }
}
