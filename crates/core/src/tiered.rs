//! Tiered buffer-pool management — the paper's second named future-work
//! item, implemented.
//!
//! "The next steps for the Farview project are ... to design suitable
//! cache management strategies to move data back and forth to persistent
//! storage" (§7). The buffer pool in disaggregated DRAM then behaves the
//! way §3 describes ("can be used as regular memory, with blocks/pages
//! being loaded from storage as needed"), across a **three-rung ladder**:
//!
//! ```text
//!   disk (BlockStore)  →  far memory (column images)  →  DRAM (FTable)
//!   authoritative          Arc<[u8]> per table,           staged rows the
//!   columnar images        per-COLUMN residency           pipeline queries
//! ```
//!
//! * [`BlockStore`] — a calibrated NVMe-class storage model holding the
//!   cold **columnar table images** ([`fv_data::ColumnImage`] bytes +
//!   read/write timing). Objects are shared out as `Arc<[u8]>`, so a
//!   read never copies the image.
//! * The **far-memory image tier** (internal to both pools) keeps
//!   recently staged images resident as zero-copy `Arc<[u8]>` buffers
//!   under their own byte budget. Pressure evicts cold *column slices*,
//!   not whole tables: a partially spilled image repays only the disk
//!   reads for its missing slices on the next staging, each costed
//!   per-slice through [`StorageParams`].
//! * [`TieredPool`] — an LRU cache manager over one connection's slice
//!   of the disaggregated memory: queries against cold tables stage them
//!   in (evicting least-recently-used DRAM residents when the budget is
//!   exceeded) and then run the offloaded pipeline.
//! * [`FleetTieredPool`] — the same manager at **fleet** scope: staged
//!   tables scatter across the fleet under the topology's *current*
//!   epoch, and a resident staged before a membership change is
//!   restaged into the new placement the next time it is queried. The
//!   restage sources from the far-memory image — only slices that were
//!   spilled to disk in the meantime are re-read.
//!
//! Any fixed-stride schema stages (the image records the schema
//! fingerprint; the pool keeps a per-object schema catalog). Image
//! validation happens once, at [`ColumnImage::open`]: corrupted or
//! truncated storage bytes surface as a typed [`FvError::Codec`], never
//! a panic.
//!
//! Query results are identical hot or cold; only the reported time
//! differs (staging cost surfaces in [`TierOutcome`] /
//! [`FleetTierOutcome`]).
//!
//! Budgets are best-effort admission bounds: a table larger than the
//! remaining budget (including a zero budget) still stages — the pool
//! cannot answer the query otherwise — and becomes the first eviction
//! victim once the next staging needs room.

use std::collections::HashMap;
use std::sync::Arc;

use fv_data::{slice_len, ColumnImage, Schema, Table};
use fv_sim::{calib, SimDuration};

use crate::cluster::{FTable, QPair, QueryOutcome};
use crate::error::FvError;
use crate::fleet::{FleetQPair, FleetQueryOutcome, FleetTable, Partitioning};
use crate::plan::Executor;
use crate::PipelineSpec;

/// NVMe-class device parameters: ~80 µs access latency, ~3 GB/s
/// sequential bandwidth (datacenter TLC flash; the paper's storage layer
/// is unspecified, so a stock SSD stands in).
#[derive(Debug, Clone, Copy)]
pub struct StorageParams {
    /// Per-request access latency.
    pub access_latency: SimDuration,
    /// Sequential bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl Default for StorageParams {
    fn default() -> Self {
        StorageParams {
            access_latency: SimDuration::from_micros(80),
            bandwidth: 3.0e9,
        }
    }
}

/// Where a staged table was found when a query had to promote it into
/// DRAM. Also the residency assumption a
/// [`PlanTarget::Tiered`](crate::plan::PlanTarget) cost estimate runs
/// under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierLevel {
    /// Resident in disaggregated DRAM — queries run immediately.
    Dram,
    /// Image resident in far memory — staging pays only the DRAM write,
    /// no device I/O.
    FarMemory,
    /// On disk (fully, or as spilled slices) — staging pays device
    /// reads before the DRAM write.
    Disk,
}

impl std::fmt::Display for TierLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierLevel::Dram => write!(f, "dram"),
            TierLevel::FarMemory => write!(f, "far"),
            TierLevel::Disk => write!(f, "disk"),
        }
    }
}

/// A named block store holding cold columnar table images.
///
/// Objects are immutable once written and shared out as `Arc<[u8]>`:
/// `get` hands back a reference-counted view of the stored image, so
/// the far-memory tier, the opener, and the store itself all alias one
/// buffer — no copy is made anywhere on the read path.
#[derive(Debug, Default)]
pub struct BlockStore {
    params: StorageParams,
    objects: HashMap<String, Arc<[u8]>>,
    reads: u64,
    writes: u64,
}

impl BlockStore {
    /// A store with the given device parameters.
    pub fn new(params: StorageParams) -> Self {
        BlockStore {
            params,
            ..BlockStore::default()
        }
    }

    /// Persist an object; returns the simulated write time. The vector
    /// is moved into a shared buffer, not copied.
    pub fn put(&mut self, name: &str, bytes: Vec<u8>) -> SimDuration {
        self.writes += 1;
        let t = self.params.access_latency
            + calib::transfer(bytes.len().max(1) as u64, self.params.bandwidth);
        self.objects.insert(name.to_string(), bytes.into());
        t
    }

    /// Fetch an object; returns a zero-copy view of the bytes and the
    /// simulated read time for the full image.
    pub fn get(&mut self, name: &str) -> Option<(Arc<[u8]>, SimDuration)> {
        let bytes = Arc::clone(self.objects.get(name)?);
        self.reads += 1;
        let t = self.params.access_latency
            + calib::transfer(bytes.len().max(1) as u64, self.params.bandwidth);
        Some((bytes, t))
    }

    /// Charge one partial read of `len` bytes (a single column slice
    /// re-fetched after a spill) without re-reading the whole object.
    pub fn read_partial(&mut self, len: u64) -> SimDuration {
        self.reads += 1;
        self.params.access_latency + calib::transfer(len.max(1), self.params.bandwidth)
    }

    /// Flip every bit of one byte of a stored object — a fault-injection
    /// hook for exercising the typed [`CodecError`](fv_data::CodecError)
    /// path (the chaos suite's storage-corruption fault). Returns false
    /// when the object does not exist or `byte` is out of range.
    pub fn corrupt_object(&mut self, name: &str, byte: usize) -> bool {
        match self.objects.get_mut(name) {
            Some(obj) if byte < obj.len() => {
                let mut v = obj.to_vec();
                v[byte] ^= 0xFF;
                *obj = v.into();
                true
            }
            _ => false,
        }
    }

    /// `(reads, writes)` served. Partial (per-slice) reads count one
    /// read each, like any other device request.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// One table's far-memory image: the shared bytes plus per-column
/// residency. A spilled slice keeps its bytes alive in the `Arc` (the
/// simulation is functional), but cost-wise it must be re-read from
/// disk before the image can be staged again.
struct FarImage {
    image: Arc<[u8]>,
    /// Per-column: is this slice resident in far memory (true) or
    /// spilled to disk (false)?
    slice_resident: Vec<bool>,
    /// Per-column slice length in bytes (directory-exact).
    slice_bytes: Vec<u64>,
    /// LRU stamp.
    last_use: u64,
}

/// What a far-tier fetch resolved to: the image bytes ready to open,
/// the schema to open them with, and what the fetch cost.
struct FarFetch {
    bytes: Arc<[u8]>,
    schema: Schema,
    read_time: SimDuration,
    slices_fetched: usize,
    source: TierLevel,
}

/// The disk + far-memory rungs of the ladder, shared by both pools:
/// a [`BlockStore`] of column images, a per-object schema catalog, and
/// the far-memory image cache with column-granular spill.
struct FarTier {
    store: BlockStore,
    catalog: HashMap<String, Schema>,
    images: HashMap<String, FarImage>,
    resident_bytes: u64,
    capacity: u64,
    spills: u64,
}

impl FarTier {
    fn new(store: BlockStore, capacity: u64) -> Self {
        FarTier {
            store,
            catalog: HashMap::new(),
            images: HashMap::new(),
            resident_bytes: 0,
            capacity,
            spills: 0,
        }
    }

    /// Encode `table` as a columnar image and persist it. Any
    /// fixed-stride schema is accepted; the schema is recorded in the
    /// catalog so the image can be reopened without out-of-band
    /// knowledge. Re-inserting a name invalidates any cached far copy.
    fn insert(&mut self, name: &str, table: &Table) -> Result<SimDuration, FvError> {
        if name.is_empty() {
            return Err(FvError::Unstageable {
                name: name.to_string(),
                reason: "object names must be non-empty",
            });
        }
        self.catalog
            .insert(name.to_string(), table.schema().clone());
        if let Some(old) = self.images.remove(name) {
            self.resident_bytes -= resident_total(&old);
        }
        Ok(self.store.put(name, ColumnImage::encode(table)))
    }

    /// Resolve `name` to openable image bytes, paying per-slice disk
    /// reads for whatever is not already far-resident: nothing on a
    /// full far hit, only the spilled slices on a partial hit, the
    /// whole image on a cold miss.
    fn fetch(&mut self, name: &str, clock: u64) -> Result<FarFetch, FvError> {
        let schema = self
            .catalog
            .get(name)
            .cloned()
            .ok_or_else(|| FvError::NotInStorage {
                name: name.to_string(),
            })?;
        if let Some(img) = self.images.get_mut(name) {
            img.last_use = clock;
            let mut read_time = SimDuration::ZERO;
            let mut fetched = 0usize;
            for (res, len) in img.slice_resident.iter_mut().zip(&img.slice_bytes) {
                if !*res {
                    read_time += self.store.read_partial(*len);
                    *res = true;
                    self.resident_bytes += *len;
                    fetched += 1;
                }
            }
            let source = if fetched == 0 {
                TierLevel::FarMemory
            } else {
                TierLevel::Disk
            };
            return Ok(FarFetch {
                bytes: Arc::clone(&img.image),
                schema,
                read_time,
                slices_fetched: fetched,
                source,
            });
        }
        // Cold miss: one sequential read of the full image, then install
        // it in far memory with every slice resident.
        let (bytes, read_time) = self.store.get(name).ok_or_else(|| FvError::NotInStorage {
            name: name.to_string(),
        })?;
        let rows = ColumnImage::open(&bytes, &schema)?.row_count();
        let slice_bytes: Vec<u64> = (0..schema.column_count())
            .map(|c| slice_len(&schema, rows, c) as u64)
            .collect();
        self.resident_bytes += slice_bytes.iter().sum::<u64>();
        let cols = slice_bytes.len();
        self.images.insert(
            name.to_string(),
            FarImage {
                image: Arc::clone(&bytes),
                slice_resident: vec![true; cols],
                slice_bytes,
                last_use: clock,
            },
        );
        Ok(FarFetch {
            bytes,
            schema,
            read_time,
            slices_fetched: cols,
            source: TierLevel::Disk,
        })
    }

    /// Spill cold column slices until the far tier fits its budget.
    /// Victims are chosen column-by-column from the least-recently-used
    /// image — a warm table loses nothing because a cold one is huge,
    /// and a partially spilled table restages cheaper than a fully
    /// spilled one. Spills are free: the tier is read-only, the disk
    /// copy is authoritative. Returns the number of slices spilled.
    fn enforce_budget(&mut self) -> u64 {
        let mut spilled = 0u64;
        while self.resident_bytes > self.capacity {
            let victim = self
                .images
                .iter()
                .filter(|(_, i)| i.slice_resident.iter().any(|r| *r))
                .min_by(|(an, ai), (bn, bi)| ai.last_use.cmp(&bi.last_use).then_with(|| an.cmp(bn)))
                .map(|(n, _)| n.clone());
            let Some(victim) = victim else { break };
            let Some(img) = self.images.get_mut(&victim) else {
                break;
            };
            let Some(idx) = img.slice_resident.iter().position(|r| *r) else {
                break;
            };
            img.slice_resident[idx] = false;
            self.resident_bytes -= img.slice_bytes[idx];
            self.spills += 1;
            spilled += 1;
        }
        spilled
    }
}

/// Sum of a far image's currently resident slice bytes.
fn resident_total(img: &FarImage) -> u64 {
    img.slice_resident
        .iter()
        .zip(&img.slice_bytes)
        .filter(|(r, _)| **r)
        .map(|(_, b)| *b)
        .sum()
}

/// Outcome of a tiered query: the query result plus the tier activity
/// that preceded it.
#[derive(Debug)]
pub struct TierOutcome {
    /// The query result (identical hot or cold).
    pub outcome: QueryOutcome,
    /// Whether the table was already resident in disaggregated DRAM.
    pub buffer_hit: bool,
    /// Which tier the staging sourced from (`None` on a DRAM hit):
    /// [`TierLevel::FarMemory`] when the image was fully far-resident,
    /// [`TierLevel::Disk`] when any slice had to come off the device.
    pub staged_from: Option<TierLevel>,
    /// Column slices read from disk during this staging (0 on a DRAM
    /// or full far-memory hit; the column count on a cold miss).
    pub slices_fetched: usize,
    /// Time spent staging the table in (device reads, if any, + write
    /// into the disaggregated buffer pool). Zero on a hit.
    pub stage_in_time: SimDuration,
    /// Tables evicted from DRAM to make room. Their far-memory images
    /// survive, so re-querying them repays only the DRAM write.
    pub evictions: Vec<String>,
    /// Column slices spilled from far memory to disk by this staging.
    pub spilled_slices: u64,
}

impl TierOutcome {
    /// Total client-observed time: staging (if any) plus the query.
    pub fn total_time(&self) -> SimDuration {
        self.stage_in_time + self.outcome.stats.response_time
    }
}

struct Resident {
    ft: FTable,
    bytes: u64,
    /// LRU stamp.
    last_use: u64,
}

/// An LRU-managed slice of the disaggregated buffer pool backed by a
/// far-memory image tier and a [`BlockStore`].
pub struct TieredPool<'a> {
    qp: &'a QPair,
    far: FarTier,
    /// DRAM budget this pool may occupy, in bytes.
    capacity: u64,
    resident: HashMap<String, Resident>,
    resident_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for TieredPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredPool")
            .field("capacity", &self.capacity)
            .field("resident_bytes", &self.resident_bytes)
            .field("resident", &self.resident.len())
            .field("far_capacity", &self.far.capacity)
            .field("far_resident_bytes", &self.far.resident_bytes)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl<'a> TieredPool<'a> {
    /// A pool over `qp`'s connection with the given DRAM budget. A zero
    /// budget is legal: every staged table then exceeds the budget, so
    /// each new staging evicts whatever the previous one brought in.
    /// The far-memory image tier defaults to 4× the DRAM budget; tune
    /// it with [`TieredPool::with_far_capacity`].
    pub fn new(qp: &'a QPair, capacity_bytes: u64, store: BlockStore) -> Self {
        TieredPool {
            qp,
            far: FarTier::new(store, capacity_bytes.saturating_mul(4)),
            capacity: capacity_bytes,
            resident: HashMap::new(),
            resident_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Set the far-memory image tier's byte budget.
    pub fn with_far_capacity(mut self, bytes: u64) -> Self {
        self.far.capacity = bytes;
        self
    }

    /// Register a table: encoded as a columnar image and persisted to
    /// storage, *not* staged into DRAM until first use ("blocks/pages
    /// being loaded from storage as needed", §3). Any fixed-stride
    /// schema is accepted.
    ///
    /// # Errors
    /// [`FvError::Unstageable`] when the object cannot be registered
    /// (e.g. an empty object name).
    pub fn insert(&mut self, name: &str, table: &Table) -> Result<SimDuration, FvError> {
        self.far.insert(name, table)
    }

    /// Is `name` currently resident in disaggregated DRAM?
    pub fn is_resident(&self, name: &str) -> bool {
        self.resident.contains_key(name)
    }

    /// `(hits, misses)` so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Bytes currently resident in DRAM.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Bytes of column-image slices currently resident in far memory.
    pub fn far_resident_bytes(&self) -> u64 {
        self.far.resident_bytes
    }

    /// Column slices spilled from far memory to disk so far.
    pub fn far_spills(&self) -> u64 {
        self.far.spills
    }

    /// `(reads, writes)` served by the backing store.
    pub fn io_counts(&self) -> (u64, u64) {
        self.far.store.io_counts()
    }

    /// Fault-injection hook: corrupt one byte of a stored image — the
    /// next cold staging of `name` fails with a typed
    /// [`FvError::Codec`].
    pub fn corrupt_stored(&mut self, name: &str, byte: usize) -> bool {
        // Invalidate the cached far copy so the corrupted bytes are
        // actually re-read and re-validated.
        if let Some(old) = self.far.images.remove(name) {
            self.far.resident_bytes -= resident_total(&old);
        }
        self.far.store.corrupt_object(name, byte)
    }

    /// Evict the least-recently-used resident table; returns its name.
    fn evict_one(&mut self) -> Result<String, FvError> {
        let victim = self
            .resident
            .iter()
            .min_by_key(|(_, r)| r.last_use)
            .map(|(n, _)| n.clone())
            .expect("evict_one called with residents");
        let r = self.resident.remove(&victim).expect("victim resident");
        self.resident_bytes -= r.bytes;
        // Read-only buffer pool (§4.2): no write-back needed, the
        // storage copy is authoritative — and the far-memory image
        // keeps the demoted table one cheap restage away.
        self.qp.free_table(r.ft)?;
        Ok(victim)
    }

    /// Run `spec` against `name`, staging it in if cold. A DRAM miss
    /// resolves down the ladder: a far-resident image restages with a
    /// zero-copy open (no device I/O), a partially spilled one re-reads
    /// only its missing slices, a cold one pays the full image read.
    /// Residency management lives here; the query itself runs through
    /// the shared [`Executor`] like every other entry point.
    pub fn query(&mut self, name: &str, spec: &PipelineSpec) -> Result<TierOutcome, FvError> {
        self.clock += 1;
        if let Some(r) = self.resident.get_mut(name) {
            r.last_use = self.clock;
            self.hits += 1;
            let ft = r.ft.clone();
            let outcome = Executor::single(self.qp, &ft, spec)?;
            return Ok(TierOutcome {
                outcome,
                buffer_hit: true,
                staged_from: None,
                slices_fetched: 0,
                stage_in_time: SimDuration::ZERO,
                evictions: Vec::new(),
                spilled_slices: 0,
            });
        }
        self.misses += 1;
        let fetch = self.far.fetch(name, self.clock)?;
        let spilled = self.far.enforce_budget();
        // Validation happened once, at open; everything below works on
        // proven-in-bounds slices.
        let table = ColumnImage::open(&fetch.bytes, &fetch.schema)?.to_table();

        // Make room under the DRAM budget.
        let need = table.byte_len() as u64;
        let mut evictions = Vec::new();
        while self.resident_bytes + need > self.capacity && !self.resident.is_empty() {
            evictions.push(self.evict_one()?);
        }

        let (ft, write_time) = self.qp.load_table(&table)?;
        self.resident.insert(
            name.to_string(),
            Resident {
                ft: ft.clone(),
                bytes: need,
                last_use: self.clock,
            },
        );
        self.resident_bytes += need;

        let outcome = Executor::single(self.qp, &ft, spec)?;
        Ok(TierOutcome {
            outcome,
            buffer_hit: false,
            staged_from: Some(fetch.source),
            slices_fetched: fetch.slices_fetched,
            stage_in_time: fetch.read_time + write_time,
            evictions,
            spilled_slices: spilled,
        })
    }
}

/// Outcome of one fleet-tier query: the merged fleet result plus the
/// tier activity that preceded it.
#[derive(Debug)]
pub struct FleetTierOutcome {
    /// The merged fleet query result (identical hot or cold).
    pub outcome: FleetQueryOutcome,
    /// Whether the table was already resident under a still-current
    /// placement.
    pub buffer_hit: bool,
    /// Whether a resident copy existed but its placement had gone
    /// stale and it was re-scattered into the current shard set.
    pub restaged: bool,
    /// Which tier the staging sourced from (`None` on a hit). An
    /// epoch-stale restage typically reports [`TierLevel::FarMemory`]:
    /// the rebalance ships only slices that were spilled to disk.
    pub staged_from: Option<TierLevel>,
    /// Column slices read from disk during this staging.
    pub slices_fetched: usize,
    /// Time spent staging the table in (device reads, if any, + the
    /// slowest shard's scatter write). Zero on a hit.
    pub stage_in_time: SimDuration,
    /// Tables evicted from fleet DRAM to make room.
    pub evictions: Vec<String>,
    /// Column slices spilled from far memory to disk by this staging.
    pub spilled_slices: u64,
}

impl FleetTierOutcome {
    /// Total client-observed time: staging (if any) plus the query.
    pub fn total_time(&self) -> SimDuration {
        self.stage_in_time + self.outcome.merged.stats.response_time
    }
}

struct FleetResident {
    ft: FleetTable,
    bytes: u64,
    /// LRU stamp.
    last_use: u64,
}

/// An LRU-managed tier over a whole fleet connection, backed by the
/// same far-memory image tier and [`BlockStore`] ladder as
/// [`TieredPool`]. The elastic-topology twist: residency is checked
/// against the topology **epoch**, so a table staged before an
/// `add_node`/`drain_node`/`remove_node` is transparently restaged into
/// the *current* placement on its next query — cold data always lands
/// on the shard set that exists now, and the restage ships only slices
/// the far tier no longer holds.
pub struct FleetTieredPool<'a> {
    fqp: &'a FleetQPair,
    far: FarTier,
    /// DRAM budget this pool may occupy across the fleet, in bytes.
    capacity: u64,
    /// Partitioning for every staged table.
    partitioning: Partitioning,
    /// Replica count per shard for every staged table.
    replicas: usize,
    resident: HashMap<String, FleetResident>,
    resident_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    restages: u64,
}

impl std::fmt::Debug for FleetTieredPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTieredPool")
            .field("capacity", &self.capacity)
            .field("resident_bytes", &self.resident_bytes)
            .field("resident", &self.resident.len())
            .field("far_capacity", &self.far.capacity)
            .field("far_resident_bytes", &self.far.resident_bytes)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("restages", &self.restages)
            .finish()
    }
}

impl<'a> FleetTieredPool<'a> {
    /// A pool over `fqp` with the given fleet-wide DRAM budget; every
    /// staged table scatters under `partitioning`. The far-memory image
    /// tier defaults to 4× the DRAM budget.
    pub fn new(
        fqp: &'a FleetQPair,
        capacity_bytes: u64,
        partitioning: Partitioning,
        store: BlockStore,
    ) -> Self {
        FleetTieredPool {
            fqp,
            far: FarTier::new(store, capacity_bytes.saturating_mul(4)),
            capacity: capacity_bytes,
            partitioning,
            replicas: 1,
            resident: HashMap::new(),
            resident_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            restages: 0,
        }
    }

    /// Set the far-memory image tier's byte budget.
    pub fn with_far_capacity(mut self, bytes: u64) -> Self {
        self.far.capacity = bytes;
        self
    }

    /// Stage every table with `replicas` copies per shard on distinct
    /// nodes — reads race the replicas and survive any `replicas − 1`
    /// node losses, exactly as
    /// [`FleetQPair::load_table_replicated`](crate::fleet::FleetQPair::load_table_replicated)
    /// documents.
    pub fn with_replication(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Register a table: encoded as a columnar image and persisted to
    /// storage, *not* staged into DRAM until first use. Any
    /// fixed-stride schema is accepted.
    ///
    /// # Errors
    /// [`FvError::Unstageable`] when the object cannot be registered
    /// (e.g. an empty object name).
    pub fn insert(&mut self, name: &str, table: &Table) -> Result<SimDuration, FvError> {
        self.far.insert(name, table)
    }

    /// Is `name` currently resident (at any epoch)?
    pub fn is_resident(&self, name: &str) -> bool {
        self.resident.contains_key(name)
    }

    /// The epoch `name`'s resident copy was placed at, if resident.
    pub fn resident_epoch(&self, name: &str) -> Option<u64> {
        self.resident.get(name).map(|r| r.ft.epoch())
    }

    /// `(hits, misses)` so far (a restage counts as a miss).
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Residents restaged because their placement epoch went stale.
    pub fn restages(&self) -> u64 {
        self.restages
    }

    /// Column slices spilled from far memory to disk so far.
    pub fn far_spills(&self) -> u64 {
        self.far.spills
    }

    /// Evict the least-recently-used resident; returns its name.
    fn evict_one(&mut self) -> Result<String, FvError> {
        let victim = self
            .resident
            .iter()
            .min_by_key(|(_, r)| r.last_use)
            .map(|(n, _)| n.clone())
            .expect("evict_one called with residents");
        let r = self.resident.remove(&victim).expect("victim resident");
        self.resident_bytes -= r.bytes;
        // Read-only buffer pool (§4.2): no write-back needed, the
        // storage copy is authoritative.
        self.fqp.free_table(r.ft)?;
        Ok(victim)
    }

    /// Run `spec` against `name`, staging it in if cold — or
    /// **restaging** it if its resident placement no longer matches
    /// what the current Active set computes. Staleness is a property of
    /// the *placement*, not the raw epoch: membership changes that
    /// cancelled out (a node added and removed again) leave residents
    /// hot. A restage sources from the far-memory image, so only slices
    /// spilled to disk since the original staging are re-read.
    pub fn query(&mut self, name: &str, spec: &PipelineSpec) -> Result<FleetTierOutcome, FvError> {
        self.clock += 1;
        let mut restaged = false;
        if let Some(r) = self.resident.get_mut(name) {
            if self.fqp.placement_is_current(r.ft.placement()) {
                r.last_use = self.clock;
                self.hits += 1;
                let ft = r.ft.clone();
                let outcome = self.fqp.far_view(&ft, spec)?;
                return Ok(FleetTierOutcome {
                    outcome,
                    buffer_hit: true,
                    restaged: false,
                    staged_from: None,
                    slices_fetched: 0,
                    stage_in_time: SimDuration::ZERO,
                    evictions: Vec::new(),
                    spilled_slices: 0,
                });
            }
            // Stale placement: drop the old copy and fall through to
            // the staging path so the table lands on the current shard
            // set.
            restaged = true;
            self.restages += 1;
            let r = self.resident.remove(name).expect("checked resident");
            self.resident_bytes -= r.bytes;
            self.fqp.free_table(r.ft)?;
        }
        self.misses += 1;
        let fetch = self.far.fetch(name, self.clock)?;
        let spilled = self.far.enforce_budget();
        let table = ColumnImage::open(&fetch.bytes, &fetch.schema)?.to_table();

        // Make room under the fleet-wide DRAM budget.
        let need = table.byte_len() as u64;
        let mut evictions = Vec::new();
        while self.resident_bytes + need > self.capacity && !self.resident.is_empty() {
            evictions.push(self.evict_one()?);
        }

        let (ft, write_time) =
            self.fqp
                .load_table_replicated(&table, self.partitioning, self.replicas)?;
        self.resident.insert(
            name.to_string(),
            FleetResident {
                ft: ft.clone(),
                bytes: need,
                last_use: self.clock,
            },
        );
        self.resident_bytes += need;

        let outcome = self.fqp.far_view(&ft, spec)?;
        Ok(FleetTierOutcome {
            outcome,
            buffer_hit: false,
            restaged,
            staged_from: Some(fetch.source),
            slices_fetched: fetch.slices_fetched,
            stage_in_time: fetch.read_time + write_time,
            evictions,
            spilled_slices: spilled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FarviewCluster, FarviewConfig};
    use fv_pipeline::PredicateExpr;

    fn table(seed: u64, bytes: u64) -> Table {
        fv_workload::TableGen::paper_default(bytes)
            .seed(seed)
            .build()
    }

    #[test]
    fn cold_query_stages_in_then_hits() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 8 << 20, BlockStore::new(StorageParams::default()));
        let t = table(1, 256 << 10);
        pool.insert("orders", &t).unwrap();
        assert!(!pool.is_resident("orders"));

        let cold = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(!cold.buffer_hit);
        assert_eq!(cold.staged_from, Some(TierLevel::Disk));
        assert_eq!(cold.slices_fetched, 8, "all 8 column slices came off disk");
        assert!(cold.stage_in_time > SimDuration::from_micros(80));
        assert_eq!(cold.outcome.payload, t.bytes());
        assert!(pool.is_resident("orders"));

        let hot = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(hot.buffer_hit);
        assert_eq!(hot.staged_from, None);
        assert_eq!(hot.stage_in_time, SimDuration::ZERO);
        assert_eq!(hot.outcome.payload, t.bytes());
        assert!(hot.total_time() < cold.total_time());
        assert_eq!(pool.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        // Budget for two 1 MB tables.
        let mut pool = TieredPool::new(&qp, 2 << 20, BlockStore::default());
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            pool.insert(name, &table(i as u64, 1 << 20)).unwrap();
        }
        pool.query("a", &PipelineSpec::passthrough()).unwrap();
        pool.query("b", &PipelineSpec::passthrough()).unwrap();
        // Touch "a" so "b" is the LRU victim.
        pool.query("a", &PipelineSpec::passthrough()).unwrap();
        let out = pool.query("c", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(out.evictions, vec!["b".to_string()], "LRU must evict b");
        assert!(pool.is_resident("a"));
        assert!(!pool.is_resident("b"));
        assert!(pool.is_resident("c"));
        assert!(pool.resident_bytes() <= 2 << 20);

        // "b" stages back in, evicting the now-LRU "a". Its image is
        // still far-resident, so no device read happens.
        let back = pool.query("b", &PipelineSpec::passthrough()).unwrap();
        assert!(!back.buffer_hit);
        assert_eq!(back.staged_from, Some(TierLevel::FarMemory));
        assert_eq!(back.slices_fetched, 0);
        assert_eq!(back.evictions, vec!["a".to_string()]);
    }

    #[test]
    fn query_results_identical_hot_and_cold() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 4 << 20, BlockStore::default());
        let t = table(9, 512 << 10);
        pool.insert("t", &t).unwrap();
        let spec = PipelineSpec::passthrough().filter(PredicateExpr::lt(0, 1u64 << 62));
        let cold = pool.query("t", &spec).unwrap();
        let hot = pool.query("t", &spec).unwrap();
        assert_eq!(cold.outcome.payload, hot.outcome.payload);
        assert_eq!(
            cold.outcome.stats.response_time, hot.outcome.stats.response_time,
            "only staging differs, not the query itself"
        );
    }

    #[test]
    fn eviction_returns_pages_to_the_pool() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let baseline = cluster.free_pages();
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default());
        pool.insert("x", &table(1, 1 << 20)).unwrap();
        pool.insert("y", &table(2, 1 << 20)).unwrap();
        pool.query("x", &PipelineSpec::passthrough()).unwrap();
        pool.query("y", &PipelineSpec::passthrough()).unwrap(); // evicts x
        assert_eq!(
            cluster.free_pages(),
            baseline - 1,
            "only one staged table may hold pages at a time"
        );
    }

    #[test]
    fn zero_budget_stages_every_query_and_evicts_the_previous() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let baseline = cluster.free_pages();
        let mut pool = TieredPool::new(&qp, 0, BlockStore::default());
        let a = table(1, 256 << 10);
        let b = table(2, 256 << 10);
        pool.insert("a", &a).unwrap();
        pool.insert("b", &b).unwrap();

        let out_a = pool.query("a", &PipelineSpec::passthrough()).unwrap();
        assert!(!out_a.buffer_hit);
        assert_eq!(
            out_a.outcome.payload,
            a.bytes(),
            "over-budget staging still answers"
        );
        assert!(pool.is_resident("a"), "best-effort admission");

        // The next distinct table evicts the over-budget resident.
        let out_b = pool.query("b", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(out_b.evictions, vec!["a".to_string()]);
        assert_eq!(out_b.outcome.payload, b.bytes());
        assert!(!pool.is_resident("a"));
        assert!(pool.is_resident("b"));
        assert_eq!(
            cluster.free_pages(),
            baseline - 1,
            "at most one over-budget resident holds pages"
        );
    }

    #[test]
    fn single_table_larger_than_budget_still_stages() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        // 1 MB table against a 256 kB budget.
        let mut pool = TieredPool::new(&qp, 256 << 10, BlockStore::default());
        let big = table(3, 1 << 20);
        let small = table(4, 256 << 10);
        pool.insert("big", &big).unwrap();
        pool.insert("small", &small).unwrap();

        let out = pool.query("big", &PipelineSpec::passthrough()).unwrap();
        assert!(!out.buffer_hit);
        assert!(out.evictions.is_empty(), "nothing resident to evict");
        assert_eq!(out.outcome.payload, big.bytes());
        assert!(pool.resident_bytes() > 256 << 10, "admitted over budget");

        // It is the first victim once anything else needs room.
        let next = pool.query("small", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(next.evictions, vec!["big".to_string()]);
        assert!(pool.resident_bytes() <= 256 << 10);
    }

    #[test]
    fn requery_after_eviction_restages_cheap_from_far_memory() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default());
        let a = table(5, 1 << 20);
        let b = table(6, 1 << 20);
        pool.insert("a", &a).unwrap();
        pool.insert("b", &b).unwrap();
        let spec = PipelineSpec::passthrough().filter(PredicateExpr::lt(0, 1u64 << 62));

        let first = pool.query("a", &spec).unwrap();
        assert!(first.stage_in_time > SimDuration::ZERO);
        assert_eq!(first.staged_from, Some(TierLevel::Disk));
        pool.query("b", &spec).unwrap(); // evicts a from DRAM
        assert!(!pool.is_resident("a"));

        let again = pool.query("a", &spec).unwrap();
        assert!(!again.buffer_hit, "evicted table must re-stage");
        assert_eq!(
            again.staged_from,
            Some(TierLevel::FarMemory),
            "the demoted table's image is still in far memory"
        );
        assert_eq!(again.slices_fetched, 0, "no device I/O on a far hit");
        assert!(
            again.stage_in_time > SimDuration::ZERO,
            "the DRAM write is still paid"
        );
        assert!(
            again.stage_in_time < first.stage_in_time,
            "zero-copy far restage must beat the cold disk path"
        );
        assert_eq!(
            again.outcome.payload, first.outcome.payload,
            "results stay byte-identical across evict + restage"
        );
        assert_eq!(pool.hit_stats(), (0, 3));
    }

    #[test]
    fn far_pressure_spills_cold_columns_and_repays_per_slice() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        // DRAM fits one 1 MB table; far memory fits one and a half, so
        // staging "b" spills half of "a"'s column slices.
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default())
            .with_far_capacity((1 << 20) + (1 << 19));
        let a = table(11, 1 << 20);
        let b = table(12, 1 << 20);
        pool.insert("a", &a).unwrap();
        pool.insert("b", &b).unwrap();

        pool.query("a", &PipelineSpec::passthrough()).unwrap();
        let out_b = pool.query("b", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(
            out_b.spilled_slices, 4,
            "half of a's 8 equal-width slices must spill"
        );
        assert!(pool.far_resident_bytes() <= (1 << 20) + (1 << 19));

        // Re-querying "a" repays exactly the spilled slices, not the
        // whole image.
        let again = pool.query("a", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(again.staged_from, Some(TierLevel::Disk));
        assert_eq!(again.slices_fetched, 4, "only the missing slices re-read");
        assert_eq!(again.outcome.payload, a.bytes());
        assert_eq!(pool.far_spills(), 4 + 4, "staging a re-spills b's slices");
    }

    #[test]
    fn any_fixed_stride_schema_stages_and_queries() {
        use fv_data::{Column, ColumnType, TableBuilder, Value};
        let schema = Schema::new(vec![
            Column {
                name: "id".into(),
                ty: ColumnType::U64,
            },
            Column {
                name: "bal".into(),
                ty: ColumnType::I64,
            },
            Column {
                name: "price".into(),
                ty: ColumnType::F64,
            },
            Column {
                name: "tag".into(),
                ty: ColumnType::Bytes(6),
            },
        ]);
        let mut b = TableBuilder::with_capacity(schema, 64);
        for i in 0..64u64 {
            b.push_values(vec![
                Value::U64(i),
                Value::I64(-(i as i64)),
                Value::F64(i as f64 * 0.25),
                Value::Bytes(vec![b'a' + (i % 26) as u8; 6]),
            ]);
        }
        let t = b.build();

        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default());
        pool.insert("mixed", &t).unwrap();
        let cold = pool.query("mixed", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(cold.outcome.payload, t.bytes());
        let hot = pool
            .query(
                "mixed",
                &PipelineSpec::passthrough().filter(PredicateExpr::lt(0, 32u64)),
            )
            .unwrap();
        assert!(hot.buffer_hit);
        assert_eq!(hot.outcome.payload.len(), 32 * t.schema().row_bytes());
    }

    #[test]
    fn empty_object_name_is_a_typed_error() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default());
        let err = pool.insert("", &table(1, 64 << 10)).unwrap_err();
        assert!(matches!(err, FvError::Unstageable { .. }), "{err}");
    }

    #[test]
    fn corrupted_image_is_a_typed_error_not_a_panic() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default());
        pool.insert("t", &table(2, 64 << 10)).unwrap();
        // Flip a payload byte: the open-time checksum must catch it.
        assert!(pool.corrupt_stored("t", 4096));
        let err = pool.query("t", &PipelineSpec::passthrough()).unwrap_err();
        assert!(matches!(err, FvError::Codec(_)), "{err}");
        // Re-inserting clean bytes recovers the object.
        pool.insert("t", &table(2, 64 << 10)).unwrap();
        assert!(pool.query("t", &PipelineSpec::passthrough()).is_ok());
    }

    #[test]
    fn fleet_tier_restages_into_the_current_placement() {
        use crate::fleet::{FarviewFleet, Partitioning};
        let fleet = FarviewFleet::new(2, FarviewConfig::tiny());
        let qp = fleet.connect().unwrap();
        let mut pool =
            FleetTieredPool::new(&qp, 8 << 20, Partitioning::RowRange, BlockStore::default());
        let t = table(7, 512 << 10);
        pool.insert("orders", &t).unwrap();

        let cold = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(!cold.buffer_hit);
        assert!(!cold.restaged);
        assert_eq!(cold.staged_from, Some(TierLevel::Disk));
        assert_eq!(cold.outcome.merged.payload, t.bytes());
        assert_eq!(cold.outcome.per_shard.len(), 2);
        assert_eq!(pool.resident_epoch("orders"), Some(0));

        let hot = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(hot.buffer_hit);
        assert_eq!(hot.stage_in_time, SimDuration::ZERO);

        // Membership churn that cancels out (add then remove the same
        // node) leaves the placement current — no restage.
        let transient = fleet.add_node();
        fleet.remove_node(transient).unwrap();
        let still_hot = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(still_hot.buffer_hit, "cancelled-out churn must stay hot");

        // Grow the fleet for real: the resident's placement goes stale,
        // so the next query restages into the *current* 4-node
        // placement — sourced from far memory, no device reads.
        fleet.add_node();
        fleet.add_node();
        let restaged = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(restaged.restaged, "stale epoch must trigger a restage");
        assert!(!restaged.buffer_hit);
        assert_eq!(
            restaged.staged_from,
            Some(TierLevel::FarMemory),
            "the rebalance restage must not re-read the device"
        );
        assert_eq!(restaged.slices_fetched, 0);
        assert!(
            restaged.stage_in_time > SimDuration::ZERO,
            "the scatter write is re-paid"
        );
        assert_eq!(
            restaged.outcome.per_shard.len(),
            4,
            "cold data lands on the shard set that exists now"
        );
        assert_eq!(restaged.outcome.merged.payload, t.bytes());
        assert_eq!(pool.resident_epoch("orders"), Some(fleet.epoch()));
        assert_eq!(pool.restages(), 1);
        assert_eq!(pool.hit_stats(), (2, 2));
    }

    #[test]
    fn storage_io_is_counted_and_timed() {
        let mut store = BlockStore::new(StorageParams {
            access_latency: SimDuration::from_micros(100),
            bandwidth: 1.0e9,
        });
        let wt = store.put("obj", vec![0u8; 1_000_000]);
        // 100 µs + 1 MB at 1 GB/s = 1.1 ms.
        assert_eq!(wt.as_nanos(), 100_000 + 1_000_000);
        let (bytes, rt) = store.get("obj").unwrap();
        assert_eq!(bytes.len(), 1_000_000);
        assert_eq!(rt, wt);
        // A partial read of one 125 kB slice costs latency + its
        // transfer share.
        let pt = store.read_partial(125_000);
        assert_eq!(pt.as_nanos(), 100_000 + 125_000);
        assert_eq!(store.io_counts(), (2, 1));
        assert!(store.get("missing").is_none());
    }
}
