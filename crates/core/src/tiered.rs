//! Tiered buffer-pool management — the paper's second named future-work
//! item, implemented.
//!
//! "The next steps for the Farview project are ... to design suitable
//! cache management strategies to move data back and forth to persistent
//! storage" (§7). The buffer pool in disaggregated DRAM then behaves the
//! way §3 describes ("can be used as regular memory, with blocks/pages
//! being loaded from storage as needed"):
//!
//! * [`BlockStore`] — a calibrated NVMe-class storage model holding the
//!   cold table images (functional bytes + read/write timing).
//! * [`TieredPool`] — an LRU cache manager over one connection's slice
//!   of the disaggregated memory: queries against cold tables stage them
//!   in from storage (evicting least-recently-used residents when the
//!   DRAM budget is exceeded) and then run the offloaded pipeline.
//!
//! Query results are identical whether a table was hot or cold; only the
//! reported time differs (staging cost surfaces in [`TierOutcome`]).

use std::collections::HashMap;

use fv_data::Table;
use fv_sim::{calib, SimDuration};

use crate::cluster::{FTable, QPair, QueryOutcome};
use crate::error::FvError;
use crate::plan::Executor;
use crate::PipelineSpec;

/// NVMe-class device parameters: ~80 µs access latency, ~3 GB/s
/// sequential bandwidth (datacenter TLC flash; the paper's storage layer
/// is unspecified, so a stock SSD stands in).
#[derive(Debug, Clone, Copy)]
pub struct StorageParams {
    /// Per-request access latency.
    pub access_latency: SimDuration,
    /// Sequential bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl Default for StorageParams {
    fn default() -> Self {
        StorageParams {
            access_latency: SimDuration::from_micros(80),
            bandwidth: 3.0e9,
        }
    }
}

/// A named block store holding cold table images.
#[derive(Debug, Default)]
pub struct BlockStore {
    params: StorageParams,
    objects: HashMap<String, Vec<u8>>,
    reads: u64,
    writes: u64,
}

impl BlockStore {
    /// A store with the given device parameters.
    pub fn new(params: StorageParams) -> Self {
        BlockStore {
            params,
            ..BlockStore::default()
        }
    }

    /// Persist an object; returns the simulated write time.
    pub fn put(&mut self, name: &str, bytes: Vec<u8>) -> SimDuration {
        self.writes += 1;
        let t = self.params.access_latency
            + calib::transfer(bytes.len().max(1) as u64, self.params.bandwidth);
        self.objects.insert(name.to_string(), bytes);
        t
    }

    /// Fetch an object; returns the bytes and the simulated read time.
    pub fn get(&mut self, name: &str) -> Option<(Vec<u8>, SimDuration)> {
        let bytes = self.objects.get(name)?.clone();
        self.reads += 1;
        let t = self.params.access_latency
            + calib::transfer(bytes.len().max(1) as u64, self.params.bandwidth);
        Some((bytes, t))
    }

    /// `(reads, writes)` served.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// Outcome of a tiered query: the query result plus the tier activity
/// that preceded it.
#[derive(Debug)]
pub struct TierOutcome {
    /// The query result (identical hot or cold).
    pub outcome: QueryOutcome,
    /// Whether the table was already resident in disaggregated DRAM.
    pub buffer_hit: bool,
    /// Time spent staging the table in from storage (device read + write
    /// into the disaggregated buffer pool). Zero on a hit.
    pub stage_in_time: SimDuration,
    /// Tables evicted to make room.
    pub evictions: Vec<String>,
}

impl TierOutcome {
    /// Total client-observed time: staging (if any) plus the query.
    pub fn total_time(&self) -> SimDuration {
        self.stage_in_time + self.outcome.stats.response_time
    }
}

struct Resident {
    ft: FTable,
    bytes: u64,
    /// LRU stamp.
    last_use: u64,
}

/// An LRU-managed slice of the disaggregated buffer pool backed by a
/// [`BlockStore`].
pub struct TieredPool<'a> {
    qp: &'a QPair,
    store: BlockStore,
    /// DRAM budget this pool may occupy, in bytes.
    capacity: u64,
    resident: HashMap<String, Resident>,
    resident_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for TieredPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredPool")
            .field("capacity", &self.capacity)
            .field("resident_bytes", &self.resident_bytes)
            .field("resident", &self.resident.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl<'a> TieredPool<'a> {
    /// A pool over `qp`'s connection with the given DRAM budget.
    pub fn new(qp: &'a QPair, capacity_bytes: u64, store: BlockStore) -> Self {
        assert!(capacity_bytes > 0, "pool needs a DRAM budget");
        TieredPool {
            qp,
            store,
            capacity: capacity_bytes,
            resident: HashMap::new(),
            resident_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Register a table: persisted to storage, *not* staged into DRAM
    /// until first use ("blocks/pages being loaded from storage as
    /// needed", §3).
    pub fn insert(&mut self, name: &str, table: &Table) -> SimDuration {
        self.store.put(name, table.bytes().to_vec())
    }

    /// Is `name` currently resident in disaggregated DRAM?
    pub fn is_resident(&self, name: &str) -> bool {
        self.resident.contains_key(name)
    }

    /// `(hits, misses)` so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Evict the least-recently-used resident table; returns its name.
    fn evict_one(&mut self) -> Result<String, FvError> {
        let victim = self
            .resident
            .iter()
            .min_by_key(|(_, r)| r.last_use)
            .map(|(n, _)| n.clone())
            .expect("evict_one called with residents");
        let r = self.resident.remove(&victim).expect("victim resident");
        self.resident_bytes -= r.bytes;
        // Read-only buffer pool (§4.2): no write-back needed, the
        // storage copy is authoritative.
        self.qp.free_table(r.ft)?;
        Ok(victim)
    }

    /// Run `spec` against `name`, staging it in from storage if cold.
    /// Residency management lives here; the query itself runs through
    /// the shared [`Executor`] like every other entry point.
    pub fn query(&mut self, name: &str, spec: &PipelineSpec) -> Result<TierOutcome, FvError> {
        self.clock += 1;
        if let Some(r) = self.resident.get_mut(name) {
            r.last_use = self.clock;
            self.hits += 1;
            let ft = r.ft.clone();
            let outcome = Executor::single(self.qp, &ft, spec)?;
            return Ok(TierOutcome {
                outcome,
                buffer_hit: true,
                stage_in_time: SimDuration::ZERO,
                evictions: Vec::new(),
            });
        }
        self.misses += 1;
        let (bytes, read_time) = self.store.get(name).ok_or_else(|| FvError::NotInStorage {
            name: name.to_string(),
        })?;
        let table = Table::from_bytes(self.table_schema(name, &bytes), bytes);

        // Make room under the DRAM budget.
        let need = table.byte_len() as u64;
        let mut evictions = Vec::new();
        while self.resident_bytes + need > self.capacity && !self.resident.is_empty() {
            evictions.push(self.evict_one()?);
        }

        let (ft, write_time) = self.qp.load_table(&table)?;
        self.resident.insert(
            name.to_string(),
            Resident {
                ft: ft.clone(),
                bytes: need,
                last_use: self.clock,
            },
        );
        self.resident_bytes += need;

        let outcome = Executor::single(self.qp, &ft, spec)?;
        Ok(TierOutcome {
            outcome,
            buffer_hit: false,
            stage_in_time: read_time + write_time,
            evictions,
        })
    }

    /// Schema registry for staged objects — tables are stored with their
    /// schema alongside (kept out of the byte image for simplicity).
    fn table_schema(&self, _name: &str, bytes: &[u8]) -> fv_data::Schema {
        // Cold images in this pool are always the paper's default row
        // format (8 × 8-byte attributes); generalizing to a persisted
        // schema catalog is mechanical.
        let _ = bytes;
        fv_data::Schema::uniform_u64(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FarviewCluster, FarviewConfig};
    use fv_pipeline::PredicateExpr;

    fn table(seed: u64, bytes: u64) -> Table {
        fv_workload::TableGen::paper_default(bytes)
            .seed(seed)
            .build()
    }

    #[test]
    fn cold_query_stages_in_then_hits() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 8 << 20, BlockStore::new(StorageParams::default()));
        let t = table(1, 256 << 10);
        pool.insert("orders", &t);
        assert!(!pool.is_resident("orders"));

        let cold = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(!cold.buffer_hit);
        assert!(cold.stage_in_time > SimDuration::from_micros(80));
        assert_eq!(cold.outcome.payload, t.bytes());
        assert!(pool.is_resident("orders"));

        let hot = pool.query("orders", &PipelineSpec::passthrough()).unwrap();
        assert!(hot.buffer_hit);
        assert_eq!(hot.stage_in_time, SimDuration::ZERO);
        assert_eq!(hot.outcome.payload, t.bytes());
        assert!(hot.total_time() < cold.total_time());
        assert_eq!(pool.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        // Budget for two 1 MB tables.
        let mut pool = TieredPool::new(&qp, 2 << 20, BlockStore::default());
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            pool.insert(name, &table(i as u64, 1 << 20));
        }
        pool.query("a", &PipelineSpec::passthrough()).unwrap();
        pool.query("b", &PipelineSpec::passthrough()).unwrap();
        // Touch "a" so "b" is the LRU victim.
        pool.query("a", &PipelineSpec::passthrough()).unwrap();
        let out = pool.query("c", &PipelineSpec::passthrough()).unwrap();
        assert_eq!(out.evictions, vec!["b".to_string()], "LRU must evict b");
        assert!(pool.is_resident("a"));
        assert!(!pool.is_resident("b"));
        assert!(pool.is_resident("c"));
        assert!(pool.resident_bytes() <= 2 << 20);

        // "b" stages back in, evicting the now-LRU "a".
        let back = pool.query("b", &PipelineSpec::passthrough()).unwrap();
        assert!(!back.buffer_hit);
        assert_eq!(back.evictions, vec!["a".to_string()]);
    }

    #[test]
    fn query_results_identical_hot_and_cold() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 4 << 20, BlockStore::default());
        let t = table(9, 512 << 10);
        pool.insert("t", &t);
        let spec = PipelineSpec::passthrough().filter(PredicateExpr::lt(0, 1u64 << 62));
        let cold = pool.query("t", &spec).unwrap();
        let hot = pool.query("t", &spec).unwrap();
        assert_eq!(cold.outcome.payload, hot.outcome.payload);
        assert_eq!(
            cold.outcome.stats.response_time, hot.outcome.stats.response_time,
            "only staging differs, not the query itself"
        );
    }

    #[test]
    fn eviction_returns_pages_to_the_pool() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let baseline = cluster.free_pages();
        let mut pool = TieredPool::new(&qp, 1 << 20, BlockStore::default());
        pool.insert("x", &table(1, 1 << 20));
        pool.insert("y", &table(2, 1 << 20));
        pool.query("x", &PipelineSpec::passthrough()).unwrap();
        pool.query("y", &PipelineSpec::passthrough()).unwrap(); // evicts x
        assert_eq!(
            cluster.free_pages(),
            baseline - 1,
            "only one staged table may hold pages at a time"
        );
    }

    #[test]
    fn storage_io_is_counted_and_timed() {
        let mut store = BlockStore::new(StorageParams {
            access_latency: SimDuration::from_micros(100),
            bandwidth: 1.0e9,
        });
        let wt = store.put("obj", vec![0u8; 1_000_000]);
        // 100 µs + 1 MB at 1 GB/s = 1.1 ms.
        assert_eq!(wt.as_nanos(), 100_000 + 1_000_000);
        let (bytes, rt) = store.get("obj").unwrap();
        assert_eq!(bytes.len(), 1_000_000);
        assert_eq!(rt, wt);
        assert_eq!(store.io_counts(), (1, 1));
        assert!(store.get("missing").is_none());
    }
}
