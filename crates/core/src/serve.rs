//! Overload-safe multi-tenant serving front end.
//!
//! The paper's buffer pool is *shared*: "multiple compute nodes" open
//! connections against one Farview deployment (§4.1), and §4.3's
//! arbiters exist precisely so "any malevolent behaviour by any of the
//! users" cannot stall the system. This module models the layer above
//! the queue pairs — a serving front end that multiplexes a heavy-tailed
//! population of closed-loop tenants onto a small pool of pipeline
//! servers, and keeps its guarantees *past* saturation:
//!
//! * **Admission control** — a per-tenant token bucket plus a global
//!   queue-depth watermark ladder convert overload into typed,
//!   retryable [`FvError::AdmissionRejected`] instead of unbounded
//!   queueing. Each class admits up to its own fraction of the queue
//!   (bronze half, silver three quarters, gold all of it) and keeps a
//!   small reserved lane so no class can be locked out entirely.
//! * **Backpressure with bounded retry** — rejected work retries with
//!   capped exponential backoff (the same doubling-then-saturating
//!   discipline as `fv_net`'s `FaultInjector`), honouring the server's
//!   `retry_after` hint; retries are bounded, and a per-query deadline
//!   surfaces as [`FvError::DeadlineExceeded`] rather than an
//!   incomplete episode.
//! * **Tenant-fair scheduling** — deficit round robin over tenant
//!   flows, cost-weighted by each tenant's scan bytes: the shard-side
//!   occupancy analogue of the byte-fair egress arbiter. One elephant
//!   cannot starve the mice.
//! * **Graceful degradation** — at absolute capacity a higher-class
//!   arrival sheds the youngest lowest-class queued query
//!   ([`FvError::LoadShed`]); shedding drops whole queries, never
//!   parts of results, so every query that *does* complete is
//!   byte-identical to an unloaded single-node run.
//!
//! The engine is a discrete-event simulation over virtual
//! [`SimTime`], deterministic from [`ServeConfig::seed`]: the same
//! tenants, config, and backend replay the same admissions, sheds, and
//! latencies, so any fairness violation is exactly reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use fv_pipeline::PipelineSpec;
use fv_sim::{Histogram, SimDuration, SimTime};

use crate::cluster::{FTable, QPair, QueryOutcome};
use crate::error::FvError;
use crate::fleet::{FleetQPair, FleetTable};

/// Base unit of the client retry backoff schedule. The discipline
/// mirrors the fault injector's: one base unit, doubling per attempt,
/// saturating after [`SERVE_BACKOFF_DOUBLINGS`] doublings — but at
/// serving timescale (queue drain, not wire round trip).
pub const SERVE_RETRY_BACKOFF: SimDuration = SimDuration::from_micros(1);

/// How many times the retry backoff doubles before it saturates.
pub const SERVE_BACKOFF_DOUBLINGS: u32 = 6;

/// Largest service ratio the weighted DRR enforces between the
/// heaviest and lightest tenant. Weights beyond this spread still get
/// at least `1/MAX_DRR_RATIO` of a quantum per round, bounding both
/// starvation and scheduler passes.
pub const MAX_DRR_RATIO: u64 = 256;

/// The backoff before retry attempt `attempt` (1-based): capped
/// exponential, never unbounded.
pub fn retry_backoff(attempt: u32) -> SimDuration {
    SERVE_RETRY_BACKOFF * u64::from(1u32 << attempt.min(SERVE_BACKOFF_DOUBLINGS))
}

/// Service class of a tenant, in shed order: under sustained overload
/// the front end rejects and sheds `Bronze` first, then `Silver`, and
/// only then touches `Gold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServeClass {
    /// Admitted up to the full queue watermark; shed last.
    Gold,
    /// Default class.
    Silver,
    /// Best-effort: first rejected, first shed.
    Bronze,
}

impl ServeClass {
    /// Stable name for reports and figures.
    pub fn name(self) -> &'static str {
        match self {
            ServeClass::Gold => "gold",
            ServeClass::Silver => "silver",
            ServeClass::Bronze => "bronze",
        }
    }

    /// Shed rank: higher ranks are shed first.
    pub fn shed_rank(self) -> usize {
        match self {
            ServeClass::Gold => 0,
            ServeClass::Silver => 1,
            ServeClass::Bronze => 2,
        }
    }

    /// Fraction of the global queue this class may fill before its
    /// arrivals are rejected (the watermark ladder).
    pub fn admit_fraction(self) -> f64 {
        match self {
            ServeClass::Gold => 1.0,
            ServeClass::Silver => 0.75,
            ServeClass::Bronze => 0.5,
        }
    }

    /// All classes, gold first.
    pub fn all() -> [ServeClass; 3] {
        [ServeClass::Gold, ServeClass::Silver, ServeClass::Bronze]
    }
}

/// One tenant of the serving population, engine-level: the workload
/// generator's `TenantMix` lowers onto this (queries already compiled
/// to [`PipelineSpec`]s), keeping the core crate workload-agnostic.
#[derive(Debug, Clone)]
pub struct ServeTenant {
    /// Unique tenant id (also the id carried in typed rejections).
    pub id: u32,
    /// Service class.
    pub class: ServeClass,
    /// Contracted share weight: drives the weighted-DRR service share
    /// and the token-bucket rate. A weight-4 tenant is entitled to 4×
    /// the service of a weight-1 tenant.
    pub weight: u64,
    /// Arrival-rate weight: a demand-4 tenant issues queries 4× as fast
    /// as a demand-1 tenant (its closed-loop think time is 4× shorter).
    /// Usually equal to `weight`; a tenant with `demand > weight` is an
    /// over-demander the admission layer must throttle back to its
    /// contracted share.
    pub demand: u64,
    /// The tenant's query stream, cycled by its closed loop.
    pub queries: Vec<PipelineSpec>,
}

/// Where admitted queries actually execute. The engine treats the
/// backend as a black box that produces real result bytes plus the
/// simulated service time; single-node and fleet deployments plug in
/// behind the same trait.
pub trait ServeBackend {
    /// Execute one of `tenant`'s queries, returning the outcome (the
    /// result payload and its simulated response time).
    fn execute(&mut self, tenant: u32, query: &PipelineSpec) -> Result<QueryOutcome, FvError>;

    /// The DRR cost of one of `tenant`'s queries, in bytes of pipeline
    /// occupancy (its table's scan size). Elephants with big tables pay
    /// proportionally more of their deficit per query, which is what
    /// keeps server occupancy byte-fair across tenants.
    fn cost(&self, tenant: u32) -> u64;
}

/// Single-node backend: one shared [`QPair`], one [`FTable`] per
/// tenant. This is also the oracle deployment — an unloaded run of the
/// same backend yields the byte-identical reference results.
pub struct SingleNodeBackend {
    qp: QPair,
    tables: Vec<(u32, FTable, u64)>,
}

impl SingleNodeBackend {
    /// A backend executing on `qp`.
    pub fn new(qp: QPair) -> Self {
        SingleNodeBackend {
            qp,
            tables: Vec::new(),
        }
    }

    /// Bind `tenant`'s queries to `table`; `scan_bytes` is its DRR
    /// cost (typically the table's byte length). Rebinding replaces.
    pub fn bind_tenant(&mut self, tenant: u32, table: FTable, scan_bytes: u64) {
        self.tables.retain(|(id, _, _)| *id != tenant);
        self.tables.push((tenant, table, scan_bytes));
    }

    /// Load a table through the backend's queue pair (convenience for
    /// harnesses that build the tenant tables and the backend together).
    pub fn load_table(&self, table: &fv_data::Table) -> Result<(FTable, SimDuration), FvError> {
        self.qp.load_table(table)
    }

    fn entry(&self, tenant: u32) -> Result<&(u32, FTable, u64), FvError> {
        self.tables
            .iter()
            .find(|(id, _, _)| *id == tenant)
            .ok_or(FvError::UnknownTenant { tenant })
    }
}

impl ServeBackend for SingleNodeBackend {
    fn execute(&mut self, tenant: u32, query: &PipelineSpec) -> Result<QueryOutcome, FvError> {
        let (_, ft, _) = self.entry(tenant)?;
        self.qp.far_view(ft, query)
    }

    fn cost(&self, tenant: u32) -> u64 {
        self.entry(tenant).map(|(_, _, c)| (*c).max(1)).unwrap_or(1)
    }
}

/// Fleet backend: one shared [`FleetQPair`], one sharded (optionally
/// replicated) [`FleetTable`] per tenant. With replication the serving
/// invariants survive a degraded node — the chaos-composition tests
/// run the overload mix through this backend.
pub struct FleetBackend {
    qp: FleetQPair,
    tables: Vec<(u32, FleetTable, u64)>,
}

impl FleetBackend {
    /// A backend fanning out over `qp`'s fleet.
    pub fn new(qp: FleetQPair) -> Self {
        FleetBackend {
            qp,
            tables: Vec::new(),
        }
    }

    /// Bind `tenant`'s queries to a fleet table. Rebinding replaces.
    pub fn bind_tenant(&mut self, tenant: u32, table: FleetTable, scan_bytes: u64) {
        self.tables.retain(|(id, _, _)| *id != tenant);
        self.tables.push((tenant, table, scan_bytes));
    }

    /// Load a replicated, sharded table through the backend's fleet
    /// queue pair.
    pub fn load_table_replicated(
        &self,
        table: &fv_data::Table,
        partitioning: crate::fleet::Partitioning,
        replicas: usize,
    ) -> Result<(FleetTable, SimDuration), FvError> {
        self.qp.load_table_replicated(table, partitioning, replicas)
    }

    fn entry(&self, tenant: u32) -> Result<&(u32, FleetTable, u64), FvError> {
        self.tables
            .iter()
            .find(|(id, _, _)| *id == tenant)
            .ok_or(FvError::UnknownTenant { tenant })
    }
}

impl ServeBackend for FleetBackend {
    fn execute(&mut self, tenant: u32, query: &PipelineSpec) -> Result<QueryOutcome, FvError> {
        let (_, ft, _) = self.entry(tenant)?;
        self.qp.far_view(ft, query).map(|out| out.merged)
    }

    fn cost(&self, tenant: u32) -> u64 {
        self.entry(tenant).map(|(_, _, c)| (*c).max(1)).unwrap_or(1)
    }
}

/// Knobs of one serving run. Defaults model a small node under a
/// moderate mix; the `overload` experiment sweeps [`ServeConfig::load`]
/// past saturation.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent pipeline servers (dynamic-region episodes in flight).
    pub servers: usize,
    /// Global admission queue capacity (jobs, the watermark base).
    pub queue_capacity: usize,
    /// Mean closed-loop think time of a weight-1 tenant at load 1.0.
    pub base_think: SimDuration,
    /// Offered-load multiplier: think times divide by it. 1.0 is the
    /// calibration point; sweeping past saturation raises it.
    pub load: f64,
    /// Token-bucket refill rate per unit of tenant weight, in queries
    /// per second: tenant `i` refills at `weight_i × rate`.
    pub bucket_qps_per_weight: f64,
    /// Token-bucket depth (burst allowance), in queries.
    pub bucket_depth: f64,
    /// Per-query deadline, measured from first submission (retries burn
    /// deadline budget).
    pub deadline: SimDuration,
    /// Bounded retry budget after rejections/sheds; when exhausted the
    /// query is abandoned and the tenant moves on.
    pub max_retries: u32,
    /// Virtual-time horizon of the run.
    pub horizon: SimDuration,
    /// Seed for think-time jitter; same seed, same run.
    pub seed: u64,
    /// Keep completed payloads in the report (for byte-identity checks
    /// against the oracle; costs memory on long runs).
    pub keep_payloads: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            servers: 4,
            queue_capacity: 64,
            base_think: SimDuration::from_micros(400),
            load: 1.0,
            bucket_qps_per_weight: 12_000.0,
            bucket_depth: 4.0,
            deadline: SimDuration::from_millis(4),
            max_retries: 8,
            horizon: SimDuration::from_millis(40),
            seed: 0x0FA5_7E57,
            keep_payloads: false,
        }
    }
}

/// One completed query, for oracle comparison.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The tenant served.
    pub tenant: u32,
    /// Index into the tenant's query stream.
    pub query_idx: usize,
    /// The result bytes (byte-identical to the oracle's, by invariant).
    pub payload: Vec<u8>,
}

/// Per-tenant outcome counters and latency quantiles.
#[derive(Debug, Clone)]
pub struct TenantServeStats {
    /// Tenant id.
    pub tenant: u32,
    /// Its class.
    pub class: ServeClass,
    /// Its contracted share weight.
    pub weight: u64,
    /// Its arrival-rate weight.
    pub demand: u64,
    /// Distinct queries the closed loop offered (retries not counted).
    pub offered: u64,
    /// Queries completed within the horizon.
    pub completed: u64,
    /// Admission rejections observed (token bucket or watermark),
    /// counting every rejected attempt.
    pub rejected: u64,
    /// Queued queries shed to make room for higher-class work.
    pub shed: u64,
    /// Queries dropped typed at their deadline.
    pub deadline_missed: u64,
    /// Queries abandoned after the retry budget ran out.
    pub abandoned: u64,
    /// Backend execution failures (typed, e.g. a dead fleet node).
    pub exec_failed: u64,
    /// Median end-to-end latency (first submission → completion), µs.
    pub p50_us: f64,
    /// Tail latency, µs.
    pub p99_us: f64,
}

/// Per-class latency rollup.
#[derive(Debug, Clone)]
pub struct ClassServeStats {
    /// The class.
    pub class: ServeClass,
    /// Completions across the class's tenants.
    pub completed: u64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// Tail latency, µs.
    pub p99_us: f64,
}

/// The outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Virtual time simulated.
    pub horizon: SimDuration,
    /// The load multiplier this run used.
    pub load: f64,
    /// Per-tenant breakdown, in tenant order.
    pub tenants: Vec<TenantServeStats>,
    /// Per-class latency rollups (gold, silver, bronze).
    pub classes: Vec<ClassServeStats>,
    /// Completed payloads, when [`ServeConfig::keep_payloads`] is set.
    pub completions: Vec<Completion>,
    /// Total queries offered (distinct, not counting retries).
    pub offered: u64,
    /// Total completions within the horizon.
    pub completed: u64,
    /// Total rejected attempts (token bucket + watermark).
    pub rejected: u64,
    /// Total queued queries shed.
    pub shed: u64,
    /// Total deadline misses.
    pub deadline_missed: u64,
    /// Total queries abandoned after retry exhaustion.
    pub abandoned: u64,
    /// Total typed backend failures.
    pub exec_failed: u64,
    /// Completions per second of virtual time.
    pub goodput_qps: f64,
    /// Fraction of offered queries that ended in a typed failure
    /// (abandoned after the retry budget, deadline-dropped, or a
    /// backend error). Work still queued or in flight at the horizon
    /// is neither completed nor rejected.
    pub rejection_rate: f64,
    /// Jain fairness index over weight-normalized per-tenant goodput
    /// (1.0 = perfectly proportional; 1/n = one tenant got everything).
    pub fairness_index: f64,
    /// The smallest per-tenant completion count — starvation shows up
    /// here as a zero.
    pub min_completed: u64,
}

/// What the front end is waiting on.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EvKind {
    /// A tenant submits (or re-submits) a query.
    Submit {
        flow: usize,
        query_idx: usize,
        first_submit: SimTime,
        attempt: u32,
    },
    /// A pipeline server finishes its job.
    ServerFree,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Ev {
    at: SimTime,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One admitted query waiting for a server.
#[derive(Debug, Clone)]
struct Queued {
    query_idx: usize,
    first_submit: SimTime,
    deadline: SimTime,
    attempt: u32,
}

/// Per-tenant runtime state.
struct Flow {
    id: u32,
    class: ServeClass,
    weight: u64,
    demand: u64,
    queries: Vec<PipelineSpec>,
    cost: u64,
    // DRR
    /// Deficit credit granted per scheduler round while backlogged —
    /// proportional to the tenant's weight, so service (and therefore
    /// completions, at comparable query cost) tracks the contracted
    /// share instead of degenerating to equal-split round robin.
    refill: u64,
    deficit: u64,
    queue: VecDeque<Queued>,
    // Token bucket
    tokens: f64,
    refilled_at: SimTime,
    // Closed-loop bookkeeping
    next_query: usize,
    rng: u64,
    // Stats
    offered: u64,
    completed: u64,
    rejected: u64,
    shed: u64,
    deadline_missed: u64,
    abandoned: u64,
    exec_failed: u64,
    latency: Histogram,
}

impl Flow {
    /// SplitMix64 step (same generator as the fault injector).
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0.5, 1.5)` — think-time jitter.
    fn jitter(&mut self) -> f64 {
        0.5 + (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The serving front end: a discrete-event closed-loop simulation of
/// many tenants multiplexed onto a pool of pipeline servers behind
/// admission control, DRR scheduling, and the shed ladder.
pub struct ServeEngine<B: ServeBackend> {
    config: ServeConfig,
    backend: B,
    flows: Vec<Flow>,
    events: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    now: SimTime,
    free_servers: usize,
    queued_total: usize,
    class_queued: [usize; 3],
    quantum: u64,
    cursor: usize,
    /// EWMA of measured service times, µs — drives `retry_after` hints.
    est_service_us: f64,
    completions: Vec<Completion>,
    class_latency: [Histogram; 3],
    class_completed: [u64; 3],
}

impl<B: ServeBackend> ServeEngine<B> {
    /// Build an engine over `tenants` against `backend`.
    ///
    /// # Errors
    /// Returns [`FvError::BadServeConfig`] for configurations that
    /// cannot run (no tenants, empty query streams, duplicate tenant
    /// ids, zero servers/capacity, non-positive load or bucket rate).
    pub fn new(tenants: &[ServeTenant], config: ServeConfig, backend: B) -> Result<Self, FvError> {
        if tenants.is_empty() {
            return Err(FvError::BadServeConfig {
                reason: "no tenants",
            });
        }
        if config.servers == 0 {
            return Err(FvError::BadServeConfig {
                reason: "zero pipeline servers",
            });
        }
        if config.queue_capacity == 0 {
            return Err(FvError::BadServeConfig {
                reason: "zero queue capacity",
            });
        }
        if !(config.load > 0.0 && config.load.is_finite()) {
            return Err(FvError::BadServeConfig {
                reason: "load multiplier must be positive and finite",
            });
        }
        if !(config.bucket_qps_per_weight > 0.0 && config.bucket_qps_per_weight.is_finite()) {
            return Err(FvError::BadServeConfig {
                reason: "bucket rate must be positive and finite",
            });
        }
        if config.bucket_depth < 1.0 {
            return Err(FvError::BadServeConfig {
                reason: "bucket depth must hold at least one token",
            });
        }
        let mut flows = Vec::with_capacity(tenants.len());
        for t in tenants {
            if t.queries.is_empty() {
                return Err(FvError::BadServeConfig {
                    reason: "a tenant has an empty query stream",
                });
            }
            if t.weight == 0 {
                return Err(FvError::BadServeConfig {
                    reason: "tenant weights must be positive",
                });
            }
            if t.demand == 0 {
                return Err(FvError::BadServeConfig {
                    reason: "tenant demand must be positive",
                });
            }
            if flows.iter().any(|f: &Flow| f.id == t.id) {
                return Err(FvError::BadServeConfig {
                    reason: "duplicate tenant id",
                });
            }
            flows.push(Flow {
                id: t.id,
                class: t.class,
                weight: t.weight,
                demand: t.demand,
                queries: t.queries.clone(),
                cost: backend.cost(t.id),
                refill: 1,
                deficit: 0,
                queue: VecDeque::new(),
                tokens: config.bucket_depth,
                refilled_at: SimTime::ZERO,
                next_query: 0,
                rng: config.seed ^ (u64::from(t.id)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                offered: 0,
                completed: 0,
                rejected: 0,
                shed: 0,
                deadline_missed: 0,
                abandoned: 0,
                exec_failed: 0,
                latency: Histogram::new(),
            });
        }
        let quantum = flows.iter().map(|f| f.cost).max().unwrap_or(1).max(1);
        // Weighted DRR: each backlogged flow earns `quantum * w / w_max`
        // credit per round, so the heaviest tenant is served every round
        // and a weight-1 tenant roughly every `w_max` rounds. The ratio
        // is clamped to [1/MAX_DRR_RATIO, 1] of a quantum so an extreme
        // weight spread bounds scheduler passes instead of starving the
        // light flows.
        let max_weight = flows.iter().map(|f| f.weight).max().unwrap_or(1).max(1);
        let floor = (quantum / MAX_DRR_RATIO).max(1);
        for f in &mut flows {
            let share =
                ((u128::from(quantum) * u128::from(f.weight)) / u128::from(max_weight)) as u64;
            f.refill = share.max(floor);
        }
        Ok(ServeEngine {
            free_servers: config.servers,
            config,
            backend,
            flows,
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            queued_total: 0,
            class_queued: [0; 3],
            quantum,
            cursor: 0,
            est_service_us: 10.0,
            completions: Vec::new(),
            class_latency: [Histogram::new(), Histogram::new(), Histogram::new()],
            class_completed: [0; 3],
        })
    }

    fn push_event(&mut self, at: SimTime, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Ev { at, seq, kind }));
    }

    /// Mean think time of `flow` at the configured load, jittered.
    /// Arrival rate follows `demand`, not the contracted `weight`.
    fn think_time(&mut self, flow: usize) -> SimDuration {
        let (demand, jitter) = match self.flows.get_mut(flow) {
            Some(f) => (f.demand.max(1), f.jitter()),
            None => (1, 1.0),
        };
        let mean_us = self.config.base_think.as_micros_f64() / (demand as f64 * self.config.load);
        SimDuration::from_micros_f64((mean_us * jitter).max(0.001))
    }

    /// Schedule `flow`'s next closed-loop query after a think pause.
    fn schedule_next(&mut self, flow: usize, from: SimTime) {
        let think = self.think_time(flow);
        let (query_idx, at) = match self.flows.get_mut(flow) {
            Some(f) => {
                let idx = f.next_query;
                f.next_query = (f.next_query + 1) % f.queries.len().max(1);
                (idx, from + think)
            }
            None => return,
        };
        self.push_event(
            at,
            EvKind::Submit {
                flow,
                query_idx,
                first_submit: at,
                attempt: 0,
            },
        );
    }

    /// How long until the queue plausibly drains below the watermark —
    /// the `retry_after` hint attached to rejections and sheds.
    fn drain_estimate(&self) -> SimDuration {
        let backlog = (self.queued_total as f64 + 1.0) * self.est_service_us
            / self.config.servers.max(1) as f64;
        SimDuration::from_micros_f64(backlog.clamp(1.0, 1_000_000.0))
    }

    /// A rejection or shed for `flow`: retry with capped exponential
    /// backoff while budget remains, abandon otherwise.
    fn reject_with_retry(
        &mut self,
        flow: usize,
        query_idx: usize,
        first_submit: SimTime,
        attempt: u32,
        retry_after: SimDuration,
    ) {
        if attempt < self.config.max_retries {
            let delay = retry_after.max(retry_backoff(attempt + 1));
            self.push_event(
                self.now + delay,
                EvKind::Submit {
                    flow,
                    query_idx,
                    first_submit,
                    attempt: attempt + 1,
                },
            );
        } else {
            if let Some(f) = self.flows.get_mut(flow) {
                f.abandoned += 1;
            }
            self.schedule_next(flow, self.now);
        }
    }

    /// Per-class guaranteed queue floor: shedding never evicts a class
    /// below this many queued entries, so no class is ever locked out
    /// of the server entirely.
    fn shed_floor(&self) -> usize {
        (self.config.queue_capacity / 8).max(1)
    }

    /// Per-class reserved admission lane: twice the shed floor. The gap
    /// is deliberate hysteresis — admission refills a pressured class up
    /// to the lane while preemption drains it down to the floor. With a
    /// single shared threshold the two would deadlock: every class pins
    /// exactly at the line where nothing is sheddable and nothing more
    /// is admittable.
    fn reserve_lane(&self) -> usize {
        self.shed_floor() * 2
    }

    /// Evict the youngest queued query of the most-sheddable class
    /// whose rank is strictly below `arriving` (i.e. strictly higher
    /// shed rank). Returns false when nothing is evictable.
    fn shed_for(&mut self, arriving: ServeClass) -> bool {
        let reserve = self.shed_floor();
        // Walk classes from most-sheddable (bronze) down to just below
        // the arriving class.
        for rank in (arriving.shed_rank() + 1..=2).rev() {
            let in_class = self.class_queued.get(rank).copied().unwrap_or(0);
            // Never shed a class below its reserved lane: the guarantee
            // that no class is locked out entirely.
            if in_class <= reserve {
                continue;
            }
            // The youngest queued query of this class: the most recent
            // tail across its tenants' queues.
            let victim = self
                .flows
                .iter()
                .enumerate()
                .filter(|(_, f)| f.class.shed_rank() == rank)
                .filter_map(|(i, f)| f.queue.back().map(|q| (i, q.first_submit)))
                .max_by_key(|&(_, fs)| fs)
                .map(|(i, _)| i);
            let Some(vidx) = victim else { continue };
            let retry_after = self.drain_estimate();
            let popped = self.flows.get_mut(vidx).and_then(|f| f.queue.pop_back());
            let Some(q) = popped else { continue };
            self.queued_total = self.queued_total.saturating_sub(1);
            if let Some(c) = self.class_queued.get_mut(rank) {
                *c = c.saturating_sub(1);
            }
            if let Some(f) = self.flows.get_mut(vidx) {
                f.shed += 1;
            }
            // The shed owner retries like any rejected tenant, carrying
            // its attempt count and original submit time forward.
            self.reject_with_retry(vidx, q.query_idx, q.first_submit, q.attempt, retry_after);
            return true;
        }
        false
    }

    /// Admission control for one (re-)submission.
    fn on_submit(&mut self, flow: usize, query_idx: usize, first_submit: SimTime, attempt: u32) {
        let now = self.now;
        let (class, deadline_at) = match self.flows.get_mut(flow) {
            Some(f) => {
                if attempt == 0 {
                    f.offered += 1;
                }
                (f.class, first_submit + self.config.deadline)
            }
            None => return,
        };
        // A retry arriving after its deadline is already dead.
        if now >= deadline_at {
            if let Some(f) = self.flows.get_mut(flow) {
                f.deadline_missed += 1;
            }
            self.schedule_next(flow, now);
            return;
        }
        // Token bucket: weight-proportional contracted rate.
        let bucket_reject = match self.flows.get_mut(flow) {
            Some(f) => {
                let rate_per_us = self.config.bucket_qps_per_weight * f.weight as f64 / 1_000_000.0;
                let elapsed_us = (now - f.refilled_at).as_micros_f64();
                f.tokens = (f.tokens + elapsed_us * rate_per_us).min(self.config.bucket_depth);
                f.refilled_at = now;
                if f.tokens < 1.0 {
                    f.rejected += 1;
                    let wait_us = ((1.0 - f.tokens) / rate_per_us).max(0.001);
                    Some(SimDuration::from_micros_f64(wait_us.min(1_000_000.0)))
                } else {
                    None
                }
            }
            None => return,
        };
        if let Some(retry_after) = bucket_reject {
            // Typed as AdmissionRejected at the API surface; here the
            // closed loop consumes its own rejection.
            self.reject_with_retry(flow, query_idx, first_submit, attempt, retry_after);
            return;
        }
        // Watermark ladder with a per-class reserved lane. An arrival
        // the ladder would turn away (or one entering through its
        // reserved lane while the queue sits at absolute capacity)
        // instead *preempts*: the youngest queued query of the most
        // sheddable strictly-lower class above its reserve floor is
        // evicted to make room — shed lowest-priority first. Only when
        // nothing below it is sheddable is the arrival rejected.
        let cap = self.config.queue_capacity;
        let watermark = ((cap as f64) * class.admit_fraction()) as usize;
        let lane = self.reserve_lane();
        let in_class = self
            .class_queued
            .get(class.shed_rank())
            .copied()
            .unwrap_or(0);
        let admitted = self.queued_total < watermark || in_class < lane;
        let needs_room = !admitted || self.queued_total >= cap;
        if needs_room && !self.shed_for(class) {
            if let Some(f) = self.flows.get_mut(flow) {
                f.rejected += 1;
            }
            let retry_after = self.drain_estimate();
            self.reject_with_retry(flow, query_idx, first_submit, attempt, retry_after);
            return;
        }
        // Admit: consume a token, enqueue on the tenant's DRR flow.
        if let Some(f) = self.flows.get_mut(flow) {
            f.tokens -= 1.0;
            f.queue.push_back(Queued {
                query_idx,
                first_submit,
                deadline: deadline_at,
                attempt,
            });
        }
        self.queued_total += 1;
        if let Some(c) = self.class_queued.get_mut(class.shed_rank()) {
            *c += 1;
        }
        self.dispatch();
    }

    /// Pop the next queued query in DRR order.
    fn drr_pop(&mut self) -> Option<(usize, Queued)> {
        if self.queued_total == 0 {
            for f in &mut self.flows {
                f.deficit = 0;
            }
            return None;
        }
        let n = self.flows.len();
        let quantum = self.quantum;
        // A backlogged flow earns at least `quantum / MAX_DRR_RATIO`
        // per visit and needs at most `quantum` to be served, so
        // `MAX_DRR_RATIO + 1` full passes always produce a job while
        // anything is queued.
        let passes = n.saturating_mul(MAX_DRR_RATIO as usize + 1);
        for _ in 0..=passes {
            let idx = self.cursor;
            let Some(f) = self.flows.get_mut(idx) else {
                self.cursor = 0;
                continue;
            };
            if !f.queue.is_empty() {
                let front_cost = f.cost.min(quantum);
                if f.deficit < front_cost {
                    f.deficit += f.refill;
                }
                if f.deficit >= front_cost {
                    let Some(job) = f.queue.pop_front() else {
                        self.cursor = (idx + 1) % n;
                        continue;
                    };
                    f.deficit -= front_cost;
                    if f.queue.is_empty() {
                        f.deficit = 0;
                    }
                    let rank = f.class.shed_rank();
                    self.queued_total = self.queued_total.saturating_sub(1);
                    if let Some(c) = self.class_queued.get_mut(rank) {
                        *c = c.saturating_sub(1);
                    }
                    self.cursor = (idx + 1) % n;
                    return Some((idx, job));
                }
                self.cursor = (idx + 1) % n;
            } else {
                f.deficit = 0;
                self.cursor = (idx + 1) % n;
            }
        }
        None
    }

    /// Put free servers to work in DRR order, dropping dead-by-deadline
    /// queries typed along the way.
    fn dispatch(&mut self) {
        while self.free_servers > 0 {
            let Some((flow, job)) = self.drr_pop() else {
                return;
            };
            if self.now >= job.deadline {
                // DeadlineExceeded: dropped whole, never partially run.
                if let Some(f) = self.flows.get_mut(flow) {
                    f.deadline_missed += 1;
                }
                self.schedule_next(flow, self.now);
                continue;
            }
            let (id, spec) = match self.flows.get(flow) {
                Some(f) => match f.queries.get(job.query_idx) {
                    Some(q) => (f.id, q.clone()),
                    None => continue,
                },
                None => continue,
            };
            match self.backend.execute(id, &spec) {
                Ok(outcome) => {
                    let service = outcome.stats.response_time;
                    let done = self.now + service;
                    self.est_service_us = 0.8 * self.est_service_us + 0.2 * service.as_micros_f64();
                    self.free_servers -= 1;
                    self.push_event(done, EvKind::ServerFree);
                    // Completions past the horizon are in flight at the
                    // end of the run, not goodput.
                    if done <= SimTime::ZERO + self.config.horizon {
                        let latency = done - job.first_submit;
                        let rank = match self.flows.get(flow) {
                            Some(f) => f.class.shed_rank(),
                            None => 0,
                        };
                        if let Some(f) = self.flows.get_mut(flow) {
                            f.completed += 1;
                            f.latency.record_duration(latency);
                        }
                        if let Some(h) = self.class_latency.get_mut(rank) {
                            h.record_duration(latency);
                        }
                        if let Some(c) = self.class_completed.get_mut(rank) {
                            *c += 1;
                        }
                        if self.config.keep_payloads {
                            self.completions.push(Completion {
                                tenant: id,
                                query_idx: job.query_idx,
                                payload: outcome.payload,
                            });
                        }
                    }
                    self.schedule_next(flow, done);
                }
                Err(_) => {
                    // Typed backend failure: the query fails whole; the
                    // tenant's loop continues. The server was never
                    // occupied.
                    if let Some(f) = self.flows.get_mut(flow) {
                        f.exec_failed += 1;
                    }
                    self.schedule_next(flow, self.now);
                }
            }
        }
    }

    /// Run the closed loops until the horizon and report.
    pub fn run(mut self) -> ServeReport {
        let horizon = SimTime::ZERO + self.config.horizon;
        // Stagger initial arrivals by one jittered think each.
        for flow in 0..self.flows.len() {
            self.schedule_next(flow, SimTime::ZERO);
        }
        while let Some(Reverse(ev)) = self.events.pop() {
            if ev.at > horizon {
                continue;
            }
            self.now = ev.at;
            match ev.kind {
                EvKind::Submit {
                    flow,
                    query_idx,
                    first_submit,
                    attempt,
                } => self.on_submit(flow, query_idx, first_submit, attempt),
                EvKind::ServerFree => {
                    self.free_servers += 1;
                    self.dispatch();
                }
            }
        }
        self.report()
    }

    fn report(mut self) -> ServeReport {
        let mut tenants = Vec::with_capacity(self.flows.len());
        let mut offered = 0u64;
        let mut completed = 0u64;
        let mut rejected = 0u64;
        let mut shed = 0u64;
        let mut deadline_missed = 0u64;
        let mut abandoned = 0u64;
        let mut exec_failed = 0u64;
        for f in &mut self.flows {
            offered += f.offered;
            completed += f.completed;
            rejected += f.rejected;
            shed += f.shed;
            deadline_missed += f.deadline_missed;
            abandoned += f.abandoned;
            exec_failed += f.exec_failed;
            tenants.push(TenantServeStats {
                tenant: f.id,
                class: f.class,
                weight: f.weight,
                demand: f.demand,
                offered: f.offered,
                completed: f.completed,
                rejected: f.rejected,
                shed: f.shed,
                deadline_missed: f.deadline_missed,
                abandoned: f.abandoned,
                exec_failed: f.exec_failed,
                p50_us: f.latency.quantile(0.5).unwrap_or(0.0),
                p99_us: f.latency.quantile(0.99).unwrap_or(0.0),
            });
        }
        // Jain index over weight-normalized goodput.
        let shares: Vec<f64> = tenants
            .iter()
            .map(|t| t.completed as f64 / t.weight.max(1) as f64)
            .collect();
        let sum: f64 = shares.iter().sum();
        let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
        let fairness_index = if sum_sq > 0.0 {
            (sum * sum) / (shares.len() as f64 * sum_sq)
        } else {
            0.0
        };
        let horizon_secs = self.config.horizon.as_micros_f64() / 1_000_000.0;
        let classes = ServeClass::all()
            .into_iter()
            .map(|class| {
                let rank = class.shed_rank();
                let completed = self.class_completed.get(rank).copied().unwrap_or(0);
                let (p50, p99) = match self.class_latency.get_mut(rank) {
                    Some(h) => (
                        h.quantile(0.5).unwrap_or(0.0),
                        h.quantile(0.99).unwrap_or(0.0),
                    ),
                    None => (0.0, 0.0),
                };
                ClassServeStats {
                    class,
                    completed,
                    p50_us: p50,
                    p99_us: p99,
                }
            })
            .collect();
        ServeReport {
            horizon: self.config.horizon,
            load: self.config.load,
            min_completed: tenants.iter().map(|t| t.completed).min().unwrap_or(0),
            goodput_qps: if horizon_secs > 0.0 {
                completed as f64 / horizon_secs
            } else {
                0.0
            },
            rejection_rate: if offered > 0 {
                (abandoned + deadline_missed + exec_failed) as f64 / offered as f64
            } else {
                0.0
            },
            fairness_index,
            tenants,
            classes,
            completions: self.completions,
            offered,
            completed,
            rejected,
            shed,
            deadline_missed,
            abandoned,
            exec_failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FarviewCluster;
    use crate::config::FarviewConfig;
    use fv_data::{Schema, TableBuilder, Value};
    use fv_pipeline::PredicateExpr;

    fn table(rows: u64, seed: u64) -> fv_data::Table {
        let schema = Schema::uniform_u64(3);
        let mut b = TableBuilder::with_capacity(schema, rows as usize);
        for r in 0..rows {
            b.push_values(vec![
                Value::U64(r),
                Value::U64((r.wrapping_mul(seed | 1)) % 1000),
                Value::U64(r % 7),
            ]);
        }
        b.build()
    }

    fn select_spec(threshold: u64) -> PipelineSpec {
        PipelineSpec::passthrough().filter(PredicateExpr::lt(1, threshold))
    }

    fn backend_with(tenants: &[ServeTenant], rows: u64) -> SingleNodeBackend {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut be = SingleNodeBackend::new(qp);
        for t in tenants {
            let tb = table(rows, u64::from(t.id) + 1);
            let (ft, _) = be.qp.load_table(&tb).unwrap();
            be.bind_tenant(t.id, ft, tb.byte_len() as u64);
        }
        be
    }

    fn mix(n: u32) -> Vec<ServeTenant> {
        (0..n)
            .map(|i| {
                let weight = (8 / (i + 1)).max(1) as u64;
                ServeTenant {
                    id: i,
                    class: match i % 3 {
                        0 => ServeClass::Gold,
                        1 => ServeClass::Silver,
                        _ => ServeClass::Bronze,
                    },
                    weight,
                    demand: weight,
                    queries: vec![select_spec(300), select_spec(700)],
                }
            })
            .collect()
    }

    fn run_at(load: f64, seed: u64) -> ServeReport {
        let tenants = mix(6);
        let backend = backend_with(&tenants, 64);
        let config = ServeConfig {
            load,
            seed,
            horizon: SimDuration::from_millis(10),
            ..ServeConfig::default()
        };
        ServeEngine::new(&tenants, config, backend).unwrap().run()
    }

    #[test]
    fn light_load_completes_everything() {
        let r = run_at(0.5, 1);
        assert!(r.completed > 0, "closed loops must make progress");
        assert_eq!(r.shed, 0, "no shedding below saturation");
        assert!(
            r.rejection_rate < 0.1,
            "light load mostly completes: {}",
            r.rejection_rate
        );
        assert!(r.min_completed > 0, "no tenant starved at light load");
        assert!(r.fairness_index > 0.5, "fairness {}", r.fairness_index);
    }

    #[test]
    fn deterministic_replay() {
        let a = run_at(4.0, 42);
        let b = run_at(4.0, 42);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.offered, b.offered);
    }

    #[test]
    fn overload_degrades_gracefully() {
        let calm = run_at(1.0, 7);
        let storm = run_at(16.0, 7);
        assert!(
            storm.offered > calm.offered,
            "higher load must offer more work"
        );
        // Bounded queue + admission control: goodput does not collapse.
        assert!(
            storm.goodput_qps > calm.goodput_qps * 0.5,
            "goodput collapsed: {} vs {}",
            storm.goodput_qps,
            calm.goodput_qps
        );
        assert!(
            storm.rejected > calm.rejected,
            "overload must trip admission control more: {} vs {}",
            storm.rejected,
            calm.rejected
        );
        assert!(storm.min_completed > 0, "tenant starved under overload");
    }

    #[test]
    fn pressed_gold_sheds_overdemanding_bronze() {
        // Four bronze over-demanders (demand far above their contracted
        // weight) spam the queue and pile up behind their small DRR
        // share; a pack of gold loops then drives the queue to its
        // capacity. Pressed gold arrivals must preempt — evicting the
        // youngest queued bronze rather than being turned away.
        let tenants: Vec<ServeTenant> = (0..13)
            .map(|i| ServeTenant {
                id: i,
                class: match i {
                    0..=7 => ServeClass::Gold,
                    8 => ServeClass::Silver,
                    _ => ServeClass::Bronze,
                },
                weight: if i <= 8 { 2 } else { 1 },
                demand: if i <= 8 { 2 } else { 8 },
                queries: vec![select_spec(300), select_spec(700)],
            })
            .collect();
        let backend = backend_with(&tenants, 64);
        let config = ServeConfig {
            servers: 1,
            queue_capacity: 8,
            load: 8.0,
            // Open the buckets wide: this test is about queue-capacity
            // pressure, not per-tenant rate limits.
            bucket_qps_per_weight: 1_000_000.0,
            seed: 5,
            horizon: SimDuration::from_millis(10),
            ..ServeConfig::default()
        };
        let r = ServeEngine::new(&tenants, config, backend).unwrap().run();
        assert!(
            r.shed > 0,
            "capacity pressure never tripped the shed ladder"
        );
        // The ladder sheds strictly lower classes only: every victim is
        // bronze, never gold or silver.
        for t in &r.tenants {
            if t.class != ServeClass::Bronze {
                assert_eq!(t.shed, 0, "{:?} tenant {} was shed", t.class, t.tenant);
            }
        }
        assert!(r.min_completed > 0, "shedding must not starve anyone");
    }

    #[test]
    fn rejections_are_typed_and_bounded() {
        let r = run_at(16.0, 3);
        // Every offered query is accounted for exactly once as a final
        // outcome; retries/rejections never leak or double-count.
        assert!(r.rejected > 0, "overload must trip admission control");
        assert!(
            r.completed + r.deadline_missed + r.abandoned + r.exec_failed <= r.offered,
            "final outcomes exceed offered work"
        );
    }

    #[test]
    fn backoff_is_capped_exponential() {
        assert_eq!(retry_backoff(2), retry_backoff(1) * 2);
        assert_eq!(
            retry_backoff(SERVE_BACKOFF_DOUBLINGS),
            retry_backoff(SERVE_BACKOFF_DOUBLINGS + 9),
            "backoff must saturate"
        );
    }

    #[test]
    fn payloads_match_unloaded_oracle() {
        let tenants = mix(4);
        let backend = backend_with(&tenants, 48);
        let config = ServeConfig {
            load: 8.0,
            keep_payloads: true,
            horizon: SimDuration::from_millis(5),
            ..ServeConfig::default()
        };
        let report = ServeEngine::new(&tenants, config, backend).unwrap().run();
        assert!(!report.completions.is_empty());
        // Oracle: a fresh unloaded backend over the same tables.
        let mut oracle = backend_with(&tenants, 48);
        for c in &report.completions {
            let spec = &tenants[c.tenant as usize].queries[c.query_idx];
            let want = oracle.execute(c.tenant, spec).unwrap().payload;
            assert_eq!(
                c.payload, want,
                "admitted query diverged from oracle (tenant {})",
                c.tenant
            );
        }
    }

    #[test]
    fn bad_configs_are_typed() {
        let tenants = mix(2);
        let be = backend_with(&tenants, 32);
        let cfg = ServeConfig {
            servers: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            ServeEngine::new(&tenants, cfg, be),
            Err(FvError::BadServeConfig { .. })
        ));
        let be = backend_with(&tenants, 32);
        assert!(matches!(
            ServeEngine::new(&[], ServeConfig::default(), be),
            Err(FvError::BadServeConfig { .. })
        ));
    }

    #[test]
    fn unknown_tenant_is_typed() {
        let cluster = FarviewCluster::new(FarviewConfig::tiny());
        let qp = cluster.connect().unwrap();
        let mut be = SingleNodeBackend::new(qp);
        assert!(matches!(
            be.execute(9, &select_spec(10)),
            Err(FvError::UnknownTenant { tenant: 9 })
        ));
    }
}
