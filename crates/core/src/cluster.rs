//! The client-facing API: connections, tables, queries.
//!
//! Maps the paper's C interface (§4.2) onto Rust:
//!
//! ```text
//! bool openConnection(QPair*, FView*)        -> FarviewCluster::connect()
//! bool allocTableMem(QPair*, FTable*)        -> QPair::alloc_table()
//! void freeTableMem(QPair*, FTable*)         -> QPair::free_table()
//! void tableRead(QPair*, FTable*)            -> QPair::table_read()
//! void tableWrite(QPair*, FTable*)           -> QPair::table_write()
//! void farView(QPair*, FTable*, u64* params) -> QPair::far_view()
//! void select(...)                           -> QPair::select()
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use fv_data::{Catalog, CatalogEntry, Row, Schema, Table, Value};
use fv_mem::{DomainId, MemoryStack, VirtAddr};
use fv_pipeline::{AggSpec, CompiledPipeline, CryptoSpec, PipelineSpec, PredicateExpr};
use fv_sim::calib::CPU_DEDUP_NS;
use fv_sim::SimDuration;

use crate::config::FarviewConfig;
use crate::episode::{self, PreparedQuery};
use crate::error::FvError;

/// Bits reserved in a stream id for the WQE index of a doorbell batch:
/// stream id = `qp << QP_STREAM_BITS | wqe`.
const QP_STREAM_BITS: u32 = 10;

/// Deepest doorbell batch one queue pair can post (send-queue length);
/// bounded so batched stream ids never collide across queue pairs.
pub const MAX_QUEUE_DEPTH: usize = 1 << QP_STREAM_BITS;

/// Backoff hint attached to [`FvError::NoFreeRegion`]: a region frees
/// when some holder disconnects, which the node cannot predict, so the
/// hint is a few typical episode times — long enough that a polling
/// client does not hammer the connection path, short enough that a
/// freed region is picked up promptly. Connection open under region
/// exhaustion is thereby a *retryable backpressure signal* with the
/// same `retry_after` shape as the serving layer's admission control.
pub const CONNECT_RETRY_AFTER: SimDuration = SimDuration::from_micros(50);

/// Per-query statistics, the unit every figure in `EXPERIMENTS.md` is
/// built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Client-observed response time (request post → result in client
    /// memory), the paper's measurement (§6.2).
    pub response_time: SimDuration,
    /// Result payload bytes.
    pub result_bytes: u64,
    /// Bytes streamed out of disaggregated DRAM.
    pub bytes_from_memory: u64,
    /// Bytes on the wire (payload + packet headers).
    pub bytes_on_wire: u64,
    /// Response packets.
    pub packets: u64,
    /// Tuples entering the pipeline.
    pub tuples_in: u64,
    /// Tuples surviving to the packer.
    pub tuples_out: u64,
    /// Cuckoo overflow tuples needing client-side software handling.
    pub overflow_tuples: u64,
    /// Duplicates the LRU shift register absorbed.
    pub hazard_catches: u64,
    /// Groups flushed by group-by.
    pub groups_flushed: u64,
    /// Client CPU time to post-process overflow tuples (software dedup /
    /// merge, §5.4) — *not* part of `response_time`.
    pub client_postprocess: SimDuration,
    /// Whether this query had to partially reconfigure the region
    /// (swapping pipelines costs milliseconds, §3.2, outside the query).
    pub reconfigured: bool,
    /// Discrete events simulated (diagnostics).
    pub sim_events: u64,
}

/// Result of a query: real bytes plus stats.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Raw result payload, packed in the output schema's row format.
    pub payload: Vec<u8>,
    /// Schema of the result tuples.
    pub schema: Schema,
    /// Statistics.
    pub stats: QueryStats,
}

impl QueryOutcome {
    /// Decode the payload into owned rows.
    ///
    /// Allocates one `Row` (plus one `Value` per column) for every
    /// result row — convenient, but a real cost on hot paths. Prefer
    /// [`QueryOutcome::iter_rows`] wherever a borrowed view suffices.
    pub fn rows(&self) -> Vec<Row> {
        self.iter_rows().map(|v| v.to_row()).collect()
    }

    /// Iterate the payload as borrowed [`fv_data::RowView`]s — zero
    /// copies, zero allocations; values decode lazily per column access.
    ///
    /// # Panics
    /// Panics if the payload is not a whole number of rows (schema
    /// mismatch).
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = fv_data::RowView<'_>> + '_ {
        fv_data::iter_rows(&self.schema, &self.payload)
    }

    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        self.payload.len() / self.schema.row_bytes()
    }
}

/// A remote table handle: the client-side catalog entry plus the
/// allocation in the disaggregated buffer pool.
#[derive(Debug, Clone)]
pub struct FTable {
    qp: u32,
    vaddr: VirtAddr,
    schema: Schema,
    rows: usize,
}

impl FTable {
    /// Virtual address of the table in the buffer pool.
    pub fn vaddr(&self) -> VirtAddr {
        self.vaddr
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Byte footprint.
    pub fn byte_len(&self) -> u64 {
        (self.rows * self.schema.row_bytes()) as u64
    }

    /// A view of rows `[lo, hi)` of this allocation — same connection,
    /// same protection domain, an interior virtual address. The
    /// rebalancer's copy episodes read exactly the moved row ranges
    /// through these views instead of streaming whole shards.
    pub(crate) fn row_slice(&self, lo: usize, hi: usize) -> FTable {
        assert!(lo <= hi && hi <= self.rows, "row slice out of bounds");
        FTable {
            qp: self.qp,
            vaddr: self.vaddr + (lo * self.schema.row_bytes()) as u64,
            schema: self.schema.clone(),
            rows: hi - lo,
        }
    }
}

/// A `SELECT`-shaped query for the [`QPair::select`] convenience wrapper
/// (the paper's `select(qp, ft, projection_flags, selection_flags,
/// predicate)`).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    projection: Option<Vec<usize>>,
    predicate: PredicateExpr,
    vectorize: bool,
}

impl SelectQuery {
    /// `SELECT * ...` with no predicate yet.
    pub fn all_columns() -> Self {
        SelectQuery {
            projection: None,
            predicate: PredicateExpr::True,
            vectorize: false,
        }
    }

    /// `SELECT <cols> ...`.
    pub fn columns(cols: Vec<usize>) -> Self {
        SelectQuery {
            projection: Some(cols),
            predicate: PredicateExpr::True,
            vectorize: false,
        }
    }

    fn add(mut self, p: PredicateExpr) -> Self {
        self.predicate = match self.predicate {
            PredicateExpr::True => p,
            existing => existing.and(p),
        };
        self
    }

    /// `AND col < value`.
    pub fn and_lt(self, col: usize, value: impl Into<Value>) -> Self {
        self.add(PredicateExpr::lt(col, value))
    }

    /// `AND col > value`.
    pub fn and_gt(self, col: usize, value: impl Into<Value>) -> Self {
        self.add(PredicateExpr::gt(col, value))
    }

    /// `AND col = value`.
    pub fn and_eq(self, col: usize, value: impl Into<Value>) -> Self {
        self.add(PredicateExpr::eq(col, value))
    }

    /// `AND col <> value`.
    pub fn and_ne(self, col: usize, value: impl Into<Value>) -> Self {
        self.add(PredicateExpr::ne(col, value))
    }

    /// Use the vectorized execution model (§5.3).
    pub fn vectorized(mut self) -> Self {
        self.vectorize = true;
        self
    }

    /// Lower into a pipeline spec.
    pub fn to_spec(&self) -> PipelineSpec {
        let mut spec = PipelineSpec::passthrough();
        if let Some(cols) = &self.projection {
            spec = spec.project(cols.clone());
        }
        if self.predicate != PredicateExpr::True {
            spec = spec.filter(self.predicate.clone());
        }
        if self.vectorize {
            spec = spec.vectorized();
        }
        spec
    }
}

struct Inner {
    config: FarviewConfig,
    mem: MemoryStack,
    /// Region slot -> queue pair bound to it.
    slots: Vec<Option<u32>>,
    /// Fingerprint of the pipeline currently loaded per region.
    loaded: Vec<Option<u64>>,
    next_qp: u32,
    reconfigurations: u64,
    /// Queries whose datapath actually executed on this node — counted
    /// once the episode engine returns success, so failed episodes do
    /// not inflate it. The replica-race regression test counts these to
    /// prove a replicated fleet runs each slot's datapath once, not
    /// once per replica.
    episodes: u64,
}

impl Inner {
    fn slot_of(&self, qp: u32) -> Option<usize> {
        self.slots.iter().position(|s| *s == Some(qp))
    }
}

/// A Farview deployment: one smart-memory node plus client connections.
#[derive(Clone)]
pub struct FarviewCluster {
    inner: Arc<Mutex<Inner>>,
}

impl FarviewCluster {
    /// Bring up a node with the given configuration.
    pub fn new(config: FarviewConfig) -> Self {
        config.validate();
        let mem = MemoryStack::with_tlb_capacity(
            config.channels,
            config.channel_bytes,
            config.tlb_entries,
        );
        let slots = vec![None; config.regions];
        let loaded = vec![None; config.regions];
        FarviewCluster {
            inner: Arc::new(Mutex::new(Inner {
                config,
                mem,
                slots,
                loaded,
                next_qp: 1,
                reconfigurations: 0,
                episodes: 0,
            })),
        }
    }

    /// `openConnection`: bind a new queue pair to a free dynamic region.
    ///
    /// # Errors
    /// Under region exhaustion returns the retryable
    /// [`FvError::NoFreeRegion`] backpressure signal — its
    /// `retry_after` ([`CONNECT_RETRY_AFTER`]) tells the client when to
    /// try again; a waiting tenant eventually connects once any holder
    /// disconnects.
    pub fn connect(&self) -> Result<QPair, FvError> {
        let mut inner = self.inner.lock();
        let slot = inner
            .slots
            .iter()
            .position(Option::is_none)
            .ok_or(FvError::NoFreeRegion {
                regions: inner.config.regions,
                retry_after: CONNECT_RETRY_AFTER,
            })?;
        let qp = inner.next_qp;
        inner.next_qp += 1;
        inner.slots[slot] = Some(qp);
        let domain = inner.mem.create_domain();
        Ok(QPair {
            inner: Arc::clone(&self.inner),
            qp,
            slot,
            domain,
            connected: true,
            catalog: Mutex::new(Catalog::new()),
        })
    }

    /// Degrade (or heal) this node's client-facing link: every episode
    /// started after the call — reads *and* writes — runs against the
    /// plan's injected faults. Setting a benign plan (the default)
    /// restores the native link.
    ///
    /// # Panics
    /// Panics if the plan's parameters are out of range
    /// ([`fv_net::FaultPlan::validate`]).
    pub fn set_fault_plan(&self, plan: fv_net::FaultPlan) {
        plan.validate();
        self.inner.lock().config.fault = plan;
    }

    /// The fault plan currently applied to this node's link.
    pub fn fault_plan(&self) -> fv_net::FaultPlan {
        self.inner.lock().config.fault.clone()
    }

    /// Total partial reconfigurations performed so far.
    pub fn reconfigurations(&self) -> u64 {
        self.inner.lock().reconfigurations
    }

    /// Queries whose datapath executed on this node so far (one per
    /// prepared query the episode engine ran — replica reads that were
    /// *modeled* rather than executed do not count).
    pub fn episodes_run(&self) -> u64 {
        self.inner.lock().episodes
    }

    /// Free pages left in the disaggregated buffer pool.
    pub fn free_pages(&self) -> u64 {
        self.inner.lock().mem.free_page_count()
    }

    /// Run several queries *concurrently* in one simulation — the
    /// multi-client experiment (Figure 12). Results are returned in
    /// request order.
    pub fn run_concurrent(
        &self,
        requests: Vec<(&QPair, &FTable, PipelineSpec)>,
    ) -> Result<Vec<QueryOutcome>, FvError> {
        let mut inner = self.inner.lock();
        let mut prepared = Vec::with_capacity(requests.len());
        let mut metas = Vec::with_capacity(requests.len());
        for (qpair, ft, spec) in requests {
            if !qpair.connected {
                return Err(FvError::Disconnected);
            }
            if ft.qp != qpair.qp {
                return Err(FvError::ForeignTable);
            }
            let (p, schema, reconf) = prepare(&mut inner, qpair, ft, spec)?;
            prepared.push(p);
            metas.push((schema, reconf));
        }
        let config = inner.config.clone();
        drop(inner);
        let results = episode::run_episode(prepared, &config)?;
        self.inner.lock().episodes += results.len() as u64;
        Ok(results
            .into_iter()
            .zip(metas)
            .map(|(r, (schema, reconfigured))| finish_outcome(r, schema, reconfigured))
            .collect())
    }
}

/// Build the `PreparedQuery` for one request (pipeline compile, region
/// reconfiguration bookkeeping, burst planning, functional data gather).
fn prepare(
    inner: &mut Inner,
    qpair: &QPair,
    ft: &FTable,
    spec: PipelineSpec,
) -> Result<(PreparedQuery, Schema, bool), FvError> {
    let pipeline = CompiledPipeline::compile(spec, &ft.schema)?;
    let fingerprint = pipeline.spec().fingerprint();
    let slot = inner.slot_of(qpair.qp).ok_or(FvError::Disconnected)?;
    let reconfigured = inner.loaded[slot] != Some(fingerprint);
    if reconfigured {
        inner.loaded[slot] = Some(fingerprint);
        inner.reconfigurations += 1;
    }
    let bytes = ft.byte_len();
    let out_schema = pipeline.out_schema().clone();
    let vector_lanes = if pipeline.spec().vectorize {
        inner.config.vector_lanes as u64
    } else {
        1
    };

    let (bursts, data, sa_tuples) = if let Some(sa) = pipeline.smart_addressing().cloned() {
        // Smart addressing: gather only the projected bytes, per tuple.
        let table = inner.mem.read(qpair.domain, ft.vaddr, bytes)?;
        let mut gathered = Vec::with_capacity(ft.rows * sa.bytes_per_tuple);
        for r in 0..ft.rows {
            sa.gather(&table, r * sa.row_bytes, &mut gathered);
        }
        (Vec::new(), gathered, Some(ft.rows as u64))
    } else if bytes == 0 {
        (Vec::new(), Vec::new(), None)
    } else {
        let bursts = inner.mem.plan_bursts(qpair.domain, ft.vaddr, bytes)?;
        let data = inner.mem.read(qpair.domain, ft.vaddr, bytes)?;
        (bursts, data, None)
    };

    Ok((
        PreparedQuery {
            qp: qpair.qp,
            slot,
            pipeline,
            bursts,
            data,
            sa_tuples,
            vector_lanes,
        },
        out_schema,
        reconfigured,
    ))
}

fn finish_outcome(r: episode::EpisodeResult, schema: Schema, reconfigured: bool) -> QueryOutcome {
    let p = r.pipeline;
    QueryOutcome {
        stats: QueryStats {
            response_time: r.response_time,
            result_bytes: r.payload.len() as u64,
            bytes_from_memory: p.bytes_in,
            bytes_on_wire: r.wire_bytes,
            packets: r.packets,
            tuples_in: p.tuples_in,
            tuples_out: p.tuples_out,
            overflow_tuples: p.overflow_tuples,
            hazard_catches: p.hazard_catches,
            groups_flushed: p.groups_flushed,
            client_postprocess: SimDuration::from_nanos(p.overflow_tuples * CPU_DEDUP_NS),
            reconfigured,
            sim_events: r.events,
        },
        payload: r.payload,
        schema,
    }
}

/// A client connection bound to one dynamic region.
pub struct QPair {
    inner: Arc<Mutex<Inner>>,
    qp: u32,
    slot: usize,
    domain: DomainId,
    connected: bool,
    /// The client-side table catalog: "We assume that the clients have
    /// local catalog information that is used to determine the addresses
    /// of the tables to be accessed" (§4.1).
    catalog: Mutex<Catalog>,
}

impl std::fmt::Debug for QPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QPair")
            .field("qp", &self.qp)
            .field("slot", &self.slot)
            .field("connected", &self.connected)
            .finish()
    }
}

impl QPair {
    /// The queue-pair id.
    pub fn id(&self) -> u32 {
        self.qp
    }

    /// The dynamic-region slot this connection owns.
    pub fn region_slot(&self) -> usize {
        self.slot
    }

    fn check_table(&self, ft: &FTable) -> Result<(), FvError> {
        if !self.connected {
            return Err(FvError::Disconnected);
        }
        if ft.qp != self.qp {
            return Err(FvError::ForeignTable);
        }
        Ok(())
    }

    /// `allocTableMem`: allocate buffer-pool space for a table shape.
    pub fn alloc_table_spec(&self, schema: &Schema, rows: usize) -> Result<FTable, FvError> {
        if !self.connected {
            return Err(FvError::Disconnected);
        }
        let bytes = (rows * schema.row_bytes()) as u64;
        let mut inner = self.inner.lock();
        let vaddr = inner.mem.alloc(self.domain, bytes.max(1))?;
        Ok(FTable {
            qp: self.qp,
            vaddr,
            schema: schema.clone(),
            rows,
        })
    }

    /// `allocTableMem` sized for an existing in-memory table.
    pub fn alloc_table(&self, table: &Table) -> Result<FTable, FvError> {
        self.alloc_table_spec(table.schema(), table.row_count())
    }

    /// `tableWrite`: populate the remote table. Returns the simulated
    /// transfer time.
    pub fn table_write(&self, ft: &FTable, data: &[u8]) -> Result<SimDuration, FvError> {
        self.check_table(ft)?;
        if data.len() as u64 != ft.byte_len() {
            return Err(FvError::WriteSizeMismatch {
                provided: data.len() as u64,
                expected: ft.byte_len(),
            });
        }
        let mut inner = self.inner.lock();
        // Simulate the transfer first: a degraded link fails the write
        // typed *before* any byte lands in the buffer pool, so a failed
        // write never leaves a partial image behind.
        let t = episode::try_write_time(data.len() as u64, &inner.config)?;
        if !data.is_empty() {
            inner.mem.write(self.domain, ft.vaddr, data)?;
        }
        Ok(t)
    }

    /// Allocate + write in one call.
    pub fn load_table(&self, table: &Table) -> Result<(FTable, SimDuration), FvError> {
        let ft = self.alloc_table(table)?;
        let t = self.table_write(&ft, table.bytes())?;
        Ok((ft, t))
    }

    /// Allocate + write + register under a name in the client-side
    /// catalog (§4.1). Later lookups rebuild the `FTable` handle from
    /// the catalog entry alone.
    pub fn load_table_named(
        &self,
        name: &str,
        table: &Table,
    ) -> Result<(FTable, SimDuration), FvError> {
        let (ft, time) = self.load_table(table)?;
        let mut cat = self.catalog.lock();
        cat.register(
            name,
            CatalogEntry {
                schema: ft.schema.clone(),
                rows: ft.rows,
                vaddr: Some(ft.vaddr),
            },
        );
        Ok((ft, time))
    }

    /// Rebuild a table handle from the catalog — what the paper's query
    /// threads do: resolve the table name to a buffer-pool address
    /// locally, without asking the memory node.
    pub fn table_by_name(&self, name: &str) -> Option<FTable> {
        let cat = self.catalog.lock();
        let entry = cat.get(name)?;
        Some(FTable {
            qp: self.qp,
            vaddr: entry.vaddr?,
            schema: entry.schema.clone(),
            rows: entry.rows,
        })
    }

    /// Drop a table from the catalog *and* free its buffer-pool pages.
    pub fn drop_named(&self, name: &str) -> Result<(), FvError> {
        let ft = {
            let mut cat = self.catalog.lock();
            match cat.remove(name).and_then(|e| e.vaddr) {
                Some(vaddr) => FTable {
                    qp: self.qp,
                    vaddr,
                    schema: Schema::uniform_u64(1), // only vaddr matters for free
                    rows: 0,
                },
                None => return Ok(()),
            }
        };
        let mut inner = self.inner.lock();
        inner.mem.free(self.domain, ft.vaddr)?;
        Ok(())
    }

    /// Names registered in this connection's catalog.
    pub fn catalog_names(&self) -> Vec<String> {
        self.catalog
            .lock()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect()
    }

    /// `freeTableMem`.
    pub fn free_table(&self, ft: FTable) -> Result<(), FvError> {
        self.check_table(&ft)?;
        let mut inner = self.inner.lock();
        inner.mem.free(self.domain, ft.vaddr)?;
        Ok(())
    }

    /// Share a table with another connection (the buffer pool "can be
    /// shared between different remote computing nodes", §4.2).
    pub fn share_table(&self, ft: &FTable, with: &QPair) -> Result<FTable, FvError> {
        self.check_table(ft)?;
        if !with.connected {
            return Err(FvError::Disconnected);
        }
        let mut inner = self.inner.lock();
        let vaddr = inner.mem.share(self.domain, ft.vaddr, with.domain)?;
        Ok(FTable {
            qp: with.qp,
            vaddr,
            schema: ft.schema.clone(),
            rows: ft.rows,
        })
    }

    /// The single-node execution engine: post `specs` as one
    /// doorbell-batched submission on this queue pair and run the whole
    /// batch as a single pipelined episode. Every single-node entry
    /// point reaches the episode machinery through here (via
    /// [`crate::plan::Executor`]); a depth-1 batch *is* a solo
    /// `farView`.
    pub(crate) fn execute_specs(
        &self,
        ft: &FTable,
        specs: &[PipelineSpec],
    ) -> Result<Vec<QueryOutcome>, FvError> {
        self.check_table(ft)?;
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        assert!(
            specs.len() <= MAX_QUEUE_DEPTH,
            "queue depth {} exceeds the send queue's {MAX_QUEUE_DEPTH} WQEs",
            specs.len()
        );
        let mut inner = self.inner.lock();
        let mut queries = Vec::with_capacity(specs.len());
        let mut metas = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let (mut p, schema, reconf) = prepare(&mut inner, self, ft, spec.clone())?;
            // Each WQE's response is its own stream on the shared flow.
            p.qp = (self.qp << QP_STREAM_BITS) | i as u32;
            metas.push((schema, reconf));
            queries.push(p);
        }
        let config = inner.config.clone();
        // The episode is a pure computation over the prepared queries;
        // release the node lock so parallel fleet-scatter workers whose
        // shards co-locate on this node simulate concurrently.
        drop(inner);
        let results =
            episode::run_batched_episodes(vec![episode::BatchRun::new(queries)], &config)?
                .remove(0);
        self.inner.lock().episodes += results.len() as u64;
        Ok(results
            .into_iter()
            .zip(metas)
            .map(|(r, (schema, reconf))| finish_outcome(r, schema, reconf))
            .collect())
    }

    /// Functional (untimed) read of the table's bytes straight from the
    /// memory stack — the rebalance coordinator's node-local data
    /// gather for composing destination images. The *timed* movement of
    /// rebalanced data goes through [`QPair::read_row_ranges`] episodes
    /// and [`QPair::table_write`]; this accessor never touches the wire
    /// model.
    pub(crate) fn peek_table(&self, ft: &FTable) -> Result<Vec<u8>, FvError> {
        self.check_table(ft)?;
        if ft.byte_len() == 0 {
            return Ok(Vec::new());
        }
        let mut inner = self.inner.lock();
        Ok(inner.mem.read(self.domain, ft.vaddr, ft.byte_len())?)
    }

    /// The rebalancer's copy-episode primitive: stream the row ranges
    /// `[lo, hi)` of `ft` as **one doorbell-batched submission** of
    /// passthrough reads on this queue pair — every range is its own
    /// WQE, the batch rides one doorbell, and the responses share the
    /// region's egress flow under DRR arbitration like any other
    /// episode. Returns the per-range outcomes plus the batch makespan
    /// (summed across sub-batches when `ranges` exceeds the send
    /// queue's [`MAX_QUEUE_DEPTH`]).
    pub(crate) fn read_row_ranges(
        &self,
        ft: &FTable,
        ranges: &[(usize, usize)],
    ) -> Result<(Vec<QueryOutcome>, SimDuration), FvError> {
        self.check_table(ft)?;
        let mut outcomes = Vec::with_capacity(ranges.len());
        let mut total = SimDuration::ZERO;
        for chunk in ranges.chunks(MAX_QUEUE_DEPTH) {
            if chunk.is_empty() {
                continue;
            }
            let mut inner = self.inner.lock();
            let mut queries = Vec::with_capacity(chunk.len());
            let mut metas = Vec::with_capacity(chunk.len());
            for (i, &(lo, hi)) in chunk.iter().enumerate() {
                let view = ft.row_slice(lo, hi);
                let (mut p, schema, reconf) =
                    prepare(&mut inner, self, &view, PipelineSpec::passthrough())?;
                p.qp = (self.qp << QP_STREAM_BITS) | i as u32;
                metas.push((schema, reconf));
                queries.push(p);
            }
            let config = inner.config.clone();
            drop(inner);
            let results =
                episode::run_batched_episodes(vec![episode::BatchRun::new(queries)], &config)?
                    .remove(0);
            self.inner.lock().episodes += results.len() as u64;
            let mut makespan = SimDuration::ZERO;
            for (r, (schema, reconf)) in results.into_iter().zip(metas) {
                let o = finish_outcome(r, schema, reconf);
                makespan = makespan.max(o.stats.response_time);
                outcomes.push(o);
            }
            total += makespan;
        }
        Ok((outcomes, total))
    }

    /// The general `farView` verb: run an operator pipeline over the
    /// table inside the disaggregated memory. Thin wrapper over
    /// [`Executor::single`](crate::plan::Executor::single).
    pub fn far_view(&self, ft: &FTable, spec: &PipelineSpec) -> Result<QueryOutcome, FvError> {
        crate::plan::Executor::single(self, ft, spec)
    }

    /// The `farView` verb at queue depth N: post every spec in `specs`
    /// as one doorbell-batched submission on this queue pair and run the
    /// whole batch as a single pipelined episode. Thin wrapper over
    /// [`Executor::batch`](crate::plan::Executor::batch).
    ///
    /// One doorbell is rung for the batch; the node overlaps the verbs'
    /// request processing, DRAM reads and operator execution, so the
    /// batch makespan is far below the serial sum of solo queries while
    /// every result stays byte-identical to its solo run. Outcomes are
    /// returned in post order.
    pub fn far_view_batch(
        &self,
        ft: &FTable,
        specs: &[PipelineSpec],
    ) -> Result<Vec<QueryOutcome>, FvError> {
        crate::plan::Executor::batch(self, ft, specs)
    }

    /// `tableRead`: plain RDMA read of the whole table through the
    /// passthrough path.
    pub fn table_read(&self, ft: &FTable) -> Result<QueryOutcome, FvError> {
        self.far_view(ft, &PipelineSpec::passthrough())
    }

    /// The paper's `select()` wrapper.
    pub fn select(&self, ft: &FTable, q: &SelectQuery) -> Result<QueryOutcome, FvError> {
        self.far_view(ft, &q.to_spec())
    }

    /// `SELECT DISTINCT <cols> FROM ft`.
    pub fn distinct(&self, ft: &FTable, cols: Vec<usize>) -> Result<QueryOutcome, FvError> {
        self.far_view(ft, &PipelineSpec::passthrough().distinct(cols))
    }

    /// `SELECT <keys>, <aggs> FROM ft GROUP BY <keys>`.
    pub fn group_by(
        &self,
        ft: &FTable,
        keys: Vec<usize>,
        aggs: Vec<AggSpec>,
    ) -> Result<QueryOutcome, FvError> {
        self.far_view(ft, &PipelineSpec::passthrough().group_by(keys, aggs))
    }

    /// Inner-join the remote table against a small build-side table
    /// shipped with the request and held in on-chip memory (§7's
    /// "joins against small tables in the memory"). `probe_col` is the
    /// key column of the remote table, `build_key` the key column of
    /// `build`.
    pub fn join_small(
        &self,
        ft: &FTable,
        probe_col: usize,
        build: &Table,
        build_key: usize,
    ) -> Result<QueryOutcome, FvError> {
        let join = fv_pipeline::JoinSmallSpec::new(probe_col, build, build_key);
        self.far_view(ft, &PipelineSpec::passthrough().join_small(join))
    }

    /// Regex selection over a string column.
    pub fn regex_match(
        &self,
        ft: &FTable,
        col: usize,
        pattern: &str,
    ) -> Result<QueryOutcome, FvError> {
        self.far_view(ft, &PipelineSpec::passthrough().regex_match(col, pattern))
    }

    /// Read a table that rests encrypted, decrypting on the data path
    /// (§5.5 / Figure 11a).
    pub fn read_decrypt(&self, ft: &FTable, key: CryptoSpec) -> Result<QueryOutcome, FvError> {
        self.far_view(ft, &PipelineSpec::passthrough().decrypt(key))
    }

    /// Close the connection, releasing the dynamic region and every
    /// allocation of this domain.
    pub fn disconnect(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        if !self.connected {
            return;
        }
        self.connected = false;
        let mut inner = self.inner.lock();
        inner.slots[self.slot] = None;
        inner.loaded[self.slot] = None;
        let _ = inner.mem.destroy_domain(self.domain);
    }
}

impl Drop for QPair {
    fn drop(&mut self) {
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_data::{TableBuilder, Value};

    fn make_table(rows: u64) -> Table {
        let schema = Schema::uniform_u64(8);
        let mut b = TableBuilder::with_capacity(schema, rows as usize);
        for i in 0..rows {
            b.push_values((0..8).map(|c| Value::U64(i * 8 + c)).collect());
        }
        b.build()
    }

    fn cluster() -> FarviewCluster {
        FarviewCluster::new(FarviewConfig::tiny())
    }

    #[test]
    fn connect_assigns_distinct_regions() {
        let c = cluster();
        let a = c.connect().unwrap();
        let b = c.connect().unwrap();
        assert_ne!(a.region_slot(), b.region_slot());
        let err = c.connect().expect_err("both regions taken");
        assert!(matches!(err, FvError::NoFreeRegion { regions: 2, .. }));
        assert_eq!(
            err.retry_after(),
            Some(CONNECT_RETRY_AFTER),
            "region exhaustion is a retryable backpressure signal"
        );
        assert!(err.is_retryable());
        drop(a);
        assert!(c.connect().is_ok(), "dropped QPair frees its region");
        let _ = b;
    }

    /// The satellite regression: a tenant that *waits out* the
    /// backpressure signal eventually connects once a region frees —
    /// the `NoFreeRegion` dead end is a retry loop, not a hard error.
    #[test]
    fn waiting_tenant_connects_when_a_region_frees() {
        let c = cluster();
        let holders = vec![c.connect().unwrap(), c.connect().unwrap()];
        // The waiting tenant polls on the advertised retry_after; a
        // holder disconnects after three backoff periods.
        let mut waited = SimDuration::ZERO;
        let mut holders = holders;
        let mut attempts = 0u32;
        let qp = loop {
            match c.connect() {
                Ok(qp) => break qp,
                Err(e) => {
                    let backoff = e.retry_after().expect("exhaustion is retryable");
                    assert!(backoff > SimDuration::ZERO);
                    waited += backoff;
                    attempts += 1;
                    assert!(attempts < 100, "tenant starved waiting for a region");
                    if attempts == 3 {
                        drop(holders.pop());
                    }
                }
            }
        };
        assert_eq!(attempts, 3, "connects on the first retry after the free");
        assert_eq!(waited, CONNECT_RETRY_AFTER * 3);
        // The freed region is genuinely usable.
        let t = make_table(8);
        let (ft, _) = qp.load_table(&t).unwrap();
        assert_eq!(qp.table_read(&ft).unwrap().payload, t.bytes());
    }

    #[test]
    fn table_roundtrip_through_buffer_pool() {
        let c = cluster();
        let qp = c.connect().unwrap();
        let t = make_table(128);
        let (ft, write_time) = qp.load_table(&t).unwrap();
        assert!(write_time > SimDuration::ZERO);
        let out = qp.table_read(&ft).unwrap();
        assert_eq!(out.payload, t.bytes());
        assert_eq!(out.row_count(), 128);
        assert_eq!(out.stats.packets, 9); // 8 KiB + FIN
        qp.free_table(ft).unwrap();
    }

    #[test]
    fn select_matches_oracle() {
        let c = cluster();
        let qp = c.connect().unwrap();
        let t = make_table(512);
        let (ft, _) = qp.load_table(&t).unwrap();
        // c0 = 8i < 2048 -> i < 256.
        let q = SelectQuery::all_columns().and_lt(0, 2048u64);
        let out = qp.select(&ft, &q).unwrap();
        assert_eq!(out.row_count(), 256);
        assert_eq!(out.stats.tuples_in, 512);
        assert_eq!(out.stats.tuples_out, 256);
        // First surviving row is row 0.
        assert_eq!(
            out.iter_rows().next().expect("rows").value(0),
            Value::U64(0)
        );
    }

    #[test]
    fn foreign_table_rejected() {
        let c = cluster();
        let a = c.connect().unwrap();
        let b = c.connect().unwrap();
        let t = make_table(4);
        let (ft, _) = a.load_table(&t).unwrap();
        assert!(matches!(b.table_read(&ft), Err(FvError::ForeignTable)));
        // But sharing makes it legal.
        let shared = a.share_table(&ft, &b).unwrap();
        let out = b.table_read(&shared).unwrap();
        assert_eq!(out.payload, t.bytes());
    }

    #[test]
    fn write_size_must_match() {
        let c = cluster();
        let qp = c.connect().unwrap();
        let t = make_table(4);
        let ft = qp.alloc_table(&t).unwrap();
        assert!(matches!(
            qp.table_write(&ft, &t.bytes()[..63]),
            Err(FvError::WriteSizeMismatch { .. })
        ));
    }

    #[test]
    fn reconfiguration_tracked_per_region() {
        let c = cluster();
        let qp = c.connect().unwrap();
        let t = make_table(16);
        let (ft, _) = qp.load_table(&t).unwrap();
        let out1 = qp.table_read(&ft).unwrap();
        assert!(out1.stats.reconfigured, "first load configures the region");
        let out2 = qp.table_read(&ft).unwrap();
        assert!(!out2.stats.reconfigured, "same pipeline stays loaded");
        let out3 = qp.distinct(&ft, vec![0]).unwrap();
        assert!(out3.stats.reconfigured, "new pipeline reconfigures");
        assert_eq!(c.reconfigurations(), 2);
    }

    #[test]
    fn distinct_and_group_by_results() {
        let c = cluster();
        let qp = c.connect().unwrap();
        let schema = Schema::uniform_u64(2);
        let mut b = TableBuilder::new(schema.clone());
        for i in 0..100u64 {
            b.push_values(vec![Value::U64(i % 10), Value::U64(1)]);
        }
        let t = b.build();
        let (ft, _) = qp.load_table(&t).unwrap();

        let d = qp.distinct(&ft, vec![0]).unwrap();
        assert_eq!(d.row_count(), 10);

        let g = qp
            .group_by(
                &ft,
                vec![0],
                vec![AggSpec {
                    col: 1,
                    func: fv_pipeline::AggFunc::Sum,
                }],
            )
            .unwrap();
        assert_eq!(g.row_count(), 10);
        for row in g.iter_rows() {
            assert_eq!(row.value(1), Value::U64(10), "each group sums to 10");
        }
        assert_eq!(g.stats.groups_flushed, 10);
    }

    #[test]
    fn concurrent_clients_via_run_concurrent() {
        let c = cluster();
        let a = c.connect().unwrap();
        let b = c.connect().unwrap();
        let t = make_table(256);
        let (fta, _) = a.load_table(&t).unwrap();
        let (ftb, _) = b.load_table(&t).unwrap();
        let outs = c
            .run_concurrent(vec![
                (&a, &fta, PipelineSpec::passthrough()),
                (&b, &ftb, PipelineSpec::passthrough()),
            ])
            .unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].payload, t.bytes());
        assert_eq!(outs[1].payload, t.bytes());
        // Concurrent runs share the wire: slower than solo.
        let solo = a.table_read(&fta).unwrap();
        assert!(outs[0].stats.response_time > solo.stats.response_time);
    }

    #[test]
    fn far_view_batch_matches_solo_queries() {
        let c = cluster();
        let qp = c.connect().unwrap();
        let t = make_table(512);
        let (ft, _) = qp.load_table(&t).unwrap();
        let specs: Vec<PipelineSpec> = (0..8u64)
            .map(|i| {
                PipelineSpec::passthrough().filter(PredicateExpr::lt(0, (i + 1) * 8 * 512 / 8))
            })
            .collect();
        let solo: Vec<QueryOutcome> = specs.iter().map(|s| qp.far_view(&ft, s).unwrap()).collect();
        let batch = qp.far_view_batch(&ft, &specs).unwrap();
        assert_eq!(batch.len(), solo.len());
        for (b, s) in batch.iter().zip(&solo) {
            assert_eq!(b.payload, s.payload, "batched result must match solo");
            assert_eq!(b.schema, s.schema);
        }
        // Pipelining: the batch makespan beats running the queries back
        // to back.
        let serial: SimDuration = solo.iter().map(|o| o.stats.response_time).sum();
        let makespan = batch
            .iter()
            .map(|o| o.stats.response_time)
            .fold(SimDuration::ZERO, SimDuration::max);
        assert!(
            makespan < serial,
            "batch must pipeline: makespan {makespan} vs serial {serial}"
        );
        // Depth 0 is a no-op, not an error.
        assert!(qp.far_view_batch(&ft, &[]).unwrap().is_empty());
    }

    #[test]
    fn join_small_end_to_end() {
        let c = cluster();
        let qp = c.connect().unwrap();
        // Probe: 100 rows, key = i % 10 in column 0.
        let schema = Schema::uniform_u64(2);
        let mut b = TableBuilder::new(schema.clone());
        for i in 0..100u64 {
            b.push_values(vec![Value::U64(i % 10), Value::U64(i)]);
        }
        let probe = b.build();
        // Build: dimension rows for keys 2 and 7.
        let mut bb = TableBuilder::new(Schema::uniform_u64(2));
        bb.push_values(vec![Value::U64(2), Value::U64(222)]);
        bb.push_values(vec![Value::U64(7), Value::U64(777)]);
        let build = bb.build();

        let (ft, _) = qp.load_table(&probe).unwrap();
        let out = qp.join_small(&ft, 0, &build, 0).unwrap();
        // 10 probe rows per key, 2 build keys.
        assert_eq!(out.row_count(), 20);
        assert_eq!(out.schema.column_count(), 3);
        for row in out.iter_rows() {
            let key = row.value(0).as_u64();
            let dim = row.value(2).as_u64();
            assert_eq!(dim, key * 111);
        }
        // Cross-validate against the independent CPU implementation.
        let cpu = fv_baseline::CpuEngine::new(fv_baseline::BaselineKind::Lcpu)
            .join_small(&probe, 0, &build, 0);
        assert_eq!(out.payload, cpu.payload);
    }

    #[test]
    fn join_upload_costs_response_time() {
        let c = cluster();
        let qp = c.connect().unwrap();
        let probe = make_table(256);
        let (ft, _) = qp.load_table(&probe).unwrap();
        let small = make_table(4);
        let big = make_table(2048); // 128 KiB build side
        let t_small = qp
            .join_small(&ft, 0, &small, 0)
            .unwrap()
            .stats
            .response_time;
        let t_big = qp.join_small(&ft, 0, &big, 0).unwrap().stats.response_time;
        assert!(
            t_big > t_small + SimDuration::from_micros(8),
            "shipping a 128 KiB build side must cost wire time: {t_big} vs {t_small}"
        );
    }

    #[test]
    fn compressed_results_shrink_the_wire() {
        let c = cluster();
        let qp = c.connect().unwrap();
        // Low-cardinality columns compress well.
        let schema = Schema::uniform_u64(8);
        let mut b = TableBuilder::new(schema.clone());
        for i in 0..4096u64 {
            b.push_values((0..8).map(|col| Value::U64((i % 7) + col)).collect());
        }
        let t = b.build();
        let (ft, _) = qp.load_table(&t).unwrap();

        let plain = qp.table_read(&ft).unwrap();
        let compressed = qp
            .far_view(&ft, &PipelineSpec::passthrough().compress())
            .unwrap();
        assert!(
            compressed.stats.bytes_on_wire * 2 < plain.stats.bytes_on_wire,
            "redundant table must compress >2x on the wire: {} vs {}",
            compressed.stats.bytes_on_wire,
            plain.stats.bytes_on_wire
        );
        assert!(compressed.stats.response_time < plain.stats.response_time);
        // The client decompresses back to the exact image.
        let recovered = fv_pipeline::compress::decompress(&compressed.payload).unwrap();
        assert_eq!(recovered, t.bytes());
    }

    #[test]
    fn catalog_names_resolve_to_handles() {
        let c = cluster();
        let qp = c.connect().unwrap();
        let t = make_table(32);
        qp.load_table_named("lineitem", &t).unwrap();
        assert_eq!(qp.catalog_names(), vec!["lineitem".to_string()]);
        let ft = qp.table_by_name("lineitem").expect("catalog hit");
        let out = qp.table_read(&ft).unwrap();
        assert_eq!(out.payload, t.bytes());
        assert!(qp.table_by_name("orders").is_none());
        let pages_before = c.free_pages();
        qp.drop_named("lineitem").unwrap();
        assert!(c.free_pages() > pages_before);
        assert!(qp.table_by_name("lineitem").is_none());
    }

    #[test]
    fn encrypted_table_roundtrip() {
        let c = cluster();
        let qp = c.connect().unwrap();
        let t = make_table(64);
        let key = CryptoSpec {
            key: [7; 16],
            iv: [9; 16],
        };
        // Store the table encrypted.
        let mut cipher_image = t.bytes().to_vec();
        fv_crypto::ctr_apply_at(&key.key, &key.iv, 0, &mut cipher_image);
        let cipher_table = Table::from_bytes(t.schema().clone(), cipher_image);
        let (ft, _) = qp.load_table(&cipher_table).unwrap();

        // A plain read returns ciphertext.
        let raw = qp.table_read(&ft).unwrap();
        assert_ne!(raw.payload, t.bytes());

        // A decrypting read returns the plaintext.
        let dec = qp.read_decrypt(&ft, key).unwrap();
        assert_eq!(dec.payload, t.bytes());
    }
}
