//! # farview-core — the Farview smart disaggregated memory
//!
//! The paper's primary contribution: a network-attached buffer pool with
//! operator off-loading. This crate wires the substrates together:
//!
//! * [`FarviewCluster`] — the deployment: one Farview node (memory stack
//!   from `fv-mem`, network stack from `fv-net`, operator stack from
//!   `fv-pipeline`) plus any number of client connections.
//! * [`QPair`] — a client connection bound to one dynamic region,
//!   exposing the paper's programmatic interface (§4.2):
//!   `openConnection` → [`FarviewCluster::connect`], `allocTableMem` →
//!   [`QPair::alloc_table`], `tableRead`/`tableWrite`, and the `farView`
//!   verb → [`QPair::far_view`] with convenience wrappers
//!   ([`QPair::select`], [`QPair::distinct`], [`QPair::group_by`],
//!   [`QPair::regex_match`], [`QPair::read_decrypt`]).
//! * [`episode`] — the discrete-event execution of one or more
//!   concurrent queries against the node (Figure 2's datapath: DRAM
//!   channels → MMU → dynamic regions → fair-shared egress → wire).
//! * [`fleet`] — scale-out: [`FarviewFleet`] hash-/range-shards tables
//!   across N nodes and fans `farView` verbs out as parallel per-shard
//!   episodes, merging results client-side (scatter–gather).
//! * [`topology`] — elasticity: the epoch-versioned node roster and
//!   per-table [`Placement`] behind the fleet, with dynamic membership
//!   ([`FarviewFleet::add_node`] / [`FarviewFleet::drain_node`] /
//!   [`FarviewFleet::remove_node`]), optional per-table replication,
//!   and the live rebalancer ([`FleetQPair::rebalance`]).
//! * [`serve`] — the overload-safe multi-tenant serving front end
//!   above the queue pairs: per-tenant token buckets and a watermark
//!   ladder convert overload into typed retryable rejections, a
//!   weighted deficit round robin keeps service tenant-fair, and at
//!   capacity the shed ladder preempts lowest-priority work — every
//!   admitted query byte-identical to an unloaded oracle.
//! * [`resources`] — the FPGA resource model behind Table 1.
//! * [`microbench`] — the pipelined-read throughput model of Figure 6(a).
//!
//! Every query returns a [`QueryOutcome`]: the real result bytes (the
//! operators actually executed) plus [`QueryStats`] with the simulated
//! client-observed response time — measured exactly as the paper does,
//! "until the final results are written to the memory of the client
//! machine" (§6.2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

mod cluster;
mod config;
pub mod episode;
mod error;
pub mod fleet;
pub mod microbench;
pub mod plan;
pub mod resources;
pub mod serve;
pub mod tiered;
pub mod topology;

pub use cluster::{
    FTable, FarviewCluster, QPair, QueryOutcome, QueryStats, SelectQuery, CONNECT_RETRY_AFTER,
    MAX_QUEUE_DEPTH,
};
pub use config::FarviewConfig;
pub use error::FvError;
pub use fleet::{
    FarviewFleet, FleetQPair, FleetQueryOutcome, FleetTable, Partitioning, ShardAssignment,
    ShardMap,
};
pub use plan::{replica_beats, Executor, Explain, LogicalStage, MergeSpec, PlanTarget, QueryPlan};
pub use serve::{
    ClassServeStats, Completion, FleetBackend, ServeBackend, ServeClass, ServeConfig, ServeEngine,
    ServeReport, ServeTenant, SingleNodeBackend, TenantServeStats,
};
pub use tiered::{
    BlockStore, FleetTierOutcome, FleetTieredPool, StorageParams, TierLevel, TierOutcome,
    TieredPool,
};
pub use topology::{
    MovePlan, NodeHealth, NodeId, Placement, RebalanceReport, ShardMove, Topology, TopologySnapshot,
};

// Re-export the pipeline vocabulary: it is the public query language.
pub use fv_pipeline::{
    AggFunc, AggSpec, CmpOp, CryptoSpec, GroupingSpec, JoinSmallSpec, PipelineSpec, PredicateExpr,
    RegexFilter,
};

// Re-export the fault vocabulary: a `FaultPlan` rides `FarviewConfig`
// and the fleet's chaos hooks ([`FarviewFleet::degrade_node`]).
pub use fv_net::FaultPlan;
