//! # fv-regex — a from-scratch byte-oriented regular-expression engine
//!
//! Farview integrates "an open source regular expression library for
//! FPGAs" (Caribou-derived, §5.3) and its CPU baselines use Google RE2
//! (§6.6). Neither is available here, so this crate implements the shared
//! functional engine both sides use:
//!
//! * a recursive-descent [`parser`] for a practical regex subset
//!   (literals, `.`, classes, alternation, grouping, `* + ?`,
//!   counted repeats `{m}`/`{m,}`/`{m,n}`, escapes, top-level anchors),
//! * Thompson [`nfa`] construction,
//! * eager subset-construction [`dfa`] determinization.
//!
//! A DFA is the right model for *both* architectures: the FPGA engines
//! are hardware state machines whose "performance is dominated by the
//! length of the string and does not depend on the complexity of the
//! regular expression" (§5.3) — exactly the O(1)-per-byte property of a
//! DFA — and RE2 is itself DFA-based. The timing difference (line rate vs
//! ~1 GB/s) is charged by the engines that embed this crate.
//!
//! ```
//! use fv_regex::Regex;
//! let re = Regex::compile("ca(r|t)+s?").unwrap();
//! assert!(re.is_match(b"three cats"));
//! assert!(!re.is_match(b"camel"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod dfa;
pub mod naive;
pub mod nfa;
pub mod parser;

use std::fmt;

pub use ast::{Ast, ByteSet};
pub use dfa::{Dfa, Prefilter};

/// Errors produced when compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Syntax error at the given byte position of the pattern.
    Syntax {
        /// Byte position in the pattern.
        pos: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The determinized automaton exceeded the state budget.
    TooComplex {
        /// The configured limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::Syntax { pos, msg } => write!(f, "syntax error at byte {pos}: {msg}"),
            RegexError::TooComplex { limit } => {
                write!(f, "pattern needs more than {limit} DFA states")
            }
        }
    }
}

impl std::error::Error for RegexError {}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    dfa: Dfa,
    anchored_end: bool,
}

impl Regex {
    /// Compile `pattern` with the default DFA state budget (8192).
    pub fn compile(pattern: &str) -> Result<Regex, RegexError> {
        Regex::compile_with_limit(pattern, 8192)
    }

    /// Compile with an explicit DFA state budget.
    pub fn compile_with_limit(pattern: &str, state_limit: usize) -> Result<Regex, RegexError> {
        let parsed = parser::parse(pattern)?;
        let nfa = nfa::Nfa::from_ast(&parsed.ast, !parsed.anchored_start);
        let dfa = Dfa::determinize(&nfa, state_limit)?;
        Ok(Regex {
            pattern: pattern.to_string(),
            dfa,
            anchored_end: parsed.anchored_end,
        })
    }

    /// The original pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of DFA states (a proxy for the FPGA engine size).
    pub fn state_count(&self) -> usize {
        self.dfa.state_count()
    }

    /// The underlying DFA — block-scanning engines derive their
    /// [`Prefilter`] from it.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Is the pattern end-anchored (`$`)? End-anchored matching cannot
    /// use the prefix-free scan (or its prefilter).
    pub fn anchored_end(&self) -> bool {
        self.anchored_end
    }

    /// Does the pattern match anywhere in `haystack` (respecting
    /// top-level anchors)?
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        if self.anchored_end {
            self.dfa.accepts_at_end(haystack)
        } else {
            self.dfa.matches_prefix_free(haystack)
        }
    }

    /// End offset of the shortest leftmost match, if any. With an `$`
    /// anchor this is the haystack length on match.
    pub fn shortest_match_end(&self, haystack: &[u8]) -> Option<usize> {
        if self.anchored_end {
            self.dfa.accepts_at_end(haystack).then_some(haystack.len())
        } else {
            self.dfa.shortest_match_end(haystack)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_search_semantics() {
        let re = Regex::compile("abc").unwrap();
        assert!(re.is_match(b"abc"));
        assert!(re.is_match(b"xxabcxx"));
        assert!(!re.is_match(b"ab"));
        assert!(!re.is_match(b""));
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::compile("(cat|dog)food").unwrap();
        assert!(re.is_match(b"catfood"));
        assert!(re.is_match(b"my dogfood bag"));
        assert!(!re.is_match(b"cat food"));
    }

    #[test]
    fn repetitions() {
        let re = Regex::compile("ab*c").unwrap();
        assert!(re.is_match(b"ac"));
        assert!(re.is_match(b"abbbbc"));
        let re = Regex::compile("ab+c").unwrap();
        assert!(!re.is_match(b"ac"));
        assert!(re.is_match(b"abc"));
        let re = Regex::compile("ab?c").unwrap();
        assert!(re.is_match(b"ac"));
        assert!(re.is_match(b"abc"));
        assert!(!re.is_match(b"abbc"));
    }

    #[test]
    fn counted_repeats() {
        let re = Regex::compile("a{3}").unwrap();
        assert!(re.is_match(b"aaa"));
        assert!(!re.is_match(b"aa"));
        let re = Regex::compile("^a{2,4}$").unwrap();
        assert!(!re.is_match(b"a"));
        assert!(re.is_match(b"aa"));
        assert!(re.is_match(b"aaaa"));
        assert!(!re.is_match(b"aaaaa"));
        let re = Regex::compile("^a{2,}$").unwrap();
        assert!(!re.is_match(b"a"));
        assert!(re.is_match(b"aaaaaaa"));
    }

    #[test]
    fn classes_and_dot() {
        let re = Regex::compile("[a-c]x[^0-9]").unwrap();
        assert!(re.is_match(b"bxz"));
        assert!(!re.is_match(b"dxz"));
        assert!(!re.is_match(b"bx5"));
        let re = Regex::compile("a.c").unwrap();
        assert!(re.is_match(b"a!c"));
        assert!(!re.is_match(b"ac"));
    }

    #[test]
    fn anchors() {
        let re = Regex::compile("^abc").unwrap();
        assert!(re.is_match(b"abcdef"));
        assert!(!re.is_match(b"xabc"));
        let re = Regex::compile("abc$").unwrap();
        assert!(re.is_match(b"xxabc"));
        assert!(!re.is_match(b"abcx"));
        let re = Regex::compile("^abc$").unwrap();
        assert!(re.is_match(b"abc"));
        assert!(!re.is_match(b"aabc"));
    }

    #[test]
    fn escapes() {
        let re = Regex::compile(r"\d+\.\d+").unwrap();
        assert!(re.is_match(b"pi is 3.14!"));
        assert!(!re.is_match(b"no numbers"));
        let re = Regex::compile(r"\w+\s\w+").unwrap();
        assert!(re.is_match(b"hello world"));
    }

    #[test]
    fn tpch_q16_like_pattern() {
        // TPC-H Q16 uses `p_type NOT LIKE 'MEDIUM POLISHED%'`; the LIKE
        // prefix translates to an anchored regex.
        let re = Regex::compile("^MEDIUM POLISHED.*").unwrap();
        assert!(re.is_match(b"MEDIUM POLISHED COPPER"));
        assert!(!re.is_match(b"SMALL POLISHED COPPER"));
    }

    #[test]
    fn shortest_match_end() {
        let re = Regex::compile("b+").unwrap();
        assert_eq!(re.shortest_match_end(b"aaabbb"), Some(4));
        assert_eq!(re.shortest_match_end(b"aaa"), None);
        let re = Regex::compile("abc$").unwrap();
        assert_eq!(re.shortest_match_end(b"zzabc"), Some(5));
    }

    #[test]
    fn error_reporting() {
        assert!(matches!(
            Regex::compile("a("),
            Err(RegexError::Syntax { .. })
        ));
        assert!(matches!(
            Regex::compile("a{5,2}"),
            Err(RegexError::Syntax { .. })
        ));
        assert!(matches!(
            Regex::compile("*a"),
            Err(RegexError::Syntax { .. })
        ));
        let err = Regex::compile("[z-a]").unwrap_err();
        assert!(err.to_string().contains("class range"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let re = Regex::compile("").unwrap();
        assert!(re.is_match(b""));
        assert!(re.is_match(b"anything"));
    }

    #[test]
    fn state_budget_enforced() {
        // A pattern whose DFA needs > 2 states under a budget of 2.
        let err = Regex::compile_with_limit("abcdef", 2).unwrap_err();
        assert_eq!(err, RegexError::TooComplex { limit: 2 });
    }
}
