//! Thompson NFA construction.
//!
//! Classic construction: every AST node becomes a fragment with one entry
//! and one exit, glued with ε-transitions. For unanchored search the
//! start state gets a self-loop over all bytes (the implicit `.*?`
//! prefix), which is also how the hardware engines handle "match
//! anywhere in the stream".

use crate::ast::{Ast, ByteSet};

/// NFA state id.
pub type StateId = u32;

/// One NFA state: byte-class transitions plus ε-transitions.
#[derive(Debug, Clone, Default)]
pub struct NfaState {
    /// `(byte set, target)` transitions.
    pub byte_edges: Vec<(ByteSet, StateId)>,
    /// ε-transitions.
    pub epsilon: Vec<StateId>,
}

/// A Thompson NFA with a single start and a single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<NfaState>,
    start: StateId,
    accept: StateId,
}

impl Nfa {
    /// Build from an AST. If `unanchored` is true the start state may
    /// skip arbitrary input before the match begins.
    pub fn from_ast(ast: &Ast, unanchored: bool) -> Nfa {
        let mut b = Builder { states: Vec::new() };
        let start = b.new_state();
        if unanchored {
            // Self-loop over every byte: skip any prefix.
            let s = start;
            b.states[s as usize].byte_edges.push((ByteSet::full(), s));
        }
        let (entry, exit) = b.compile(ast);
        b.states[start as usize].epsilon.push(entry);
        Nfa {
            states: b.states,
            start,
            accept: exit,
        }
    }

    /// All states.
    pub fn states(&self) -> &[NfaState] {
        &self.states
    }

    /// Start state id.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Accept state id.
    pub fn accept(&self) -> StateId {
        self.accept
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// ε-closure of a set of states (sorted, deduplicated) — the core
    /// operation of subset construction.
    pub fn epsilon_closure(&self, seed: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = Vec::with_capacity(seed.len());
        for &s in seed {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for &t in &self.states[s as usize].epsilon {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

struct Builder {
    states: Vec<NfaState>,
}

impl Builder {
    fn new_state(&mut self) -> StateId {
        let id = u32::try_from(self.states.len()).expect("NFA too large");
        self.states.push(NfaState::default());
        id
    }

    /// Compile a fragment, returning `(entry, exit)`.
    fn compile(&mut self, ast: &Ast) -> (StateId, StateId) {
        match ast {
            Ast::Empty => {
                let s = self.new_state();
                (s, s)
            }
            Ast::Class(set) => {
                let entry = self.new_state();
                let exit = self.new_state();
                self.states[entry as usize].byte_edges.push((*set, exit));
                (entry, exit)
            }
            Ast::Concat(parts) => {
                let mut entry = None;
                let mut prev_exit: Option<StateId> = None;
                for p in parts {
                    let (e, x) = self.compile(p);
                    if let Some(px) = prev_exit {
                        self.states[px as usize].epsilon.push(e);
                    } else {
                        entry = Some(e);
                    }
                    prev_exit = Some(x);
                }
                match (entry, prev_exit) {
                    (Some(e), Some(x)) => (e, x),
                    _ => {
                        let s = self.new_state();
                        (s, s)
                    }
                }
            }
            Ast::Alt(branches) => {
                let entry = self.new_state();
                let exit = self.new_state();
                for br in branches {
                    let (e, x) = self.compile(br);
                    self.states[entry as usize].epsilon.push(e);
                    self.states[x as usize].epsilon.push(exit);
                }
                (entry, exit)
            }
            Ast::Star(inner) => {
                let entry = self.new_state();
                let exit = self.new_state();
                let (e, x) = self.compile(inner);
                self.states[entry as usize].epsilon.push(e);
                self.states[entry as usize].epsilon.push(exit);
                self.states[x as usize].epsilon.push(e);
                self.states[x as usize].epsilon.push(exit);
                (entry, exit)
            }
            Ast::Plus(inner) => {
                let (e, x) = self.compile(inner);
                let exit = self.new_state();
                self.states[x as usize].epsilon.push(e);
                self.states[x as usize].epsilon.push(exit);
                (e, exit)
            }
            Ast::Question(inner) => {
                let entry = self.new_state();
                let exit = self.new_state();
                let (e, x) = self.compile(inner);
                self.states[entry as usize].epsilon.push(e);
                self.states[entry as usize].epsilon.push(exit);
                self.states[x as usize].epsilon.push(exit);
                (entry, exit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Direct NFA simulation, used to validate construction independently
    /// of the DFA layer.
    fn nfa_matches(nfa: &Nfa, input: &[u8]) -> bool {
        let mut current = nfa.epsilon_closure(&[nfa.start()]);
        if current.contains(&nfa.accept()) {
            return true;
        }
        for &b in input {
            let mut next = Vec::new();
            for &s in &current {
                for (set, t) in &nfa.states()[s as usize].byte_edges {
                    if set.contains(b) {
                        next.push(*t);
                    }
                }
            }
            current = nfa.epsilon_closure(&next);
            if current.contains(&nfa.accept()) {
                return true;
            }
        }
        false
    }

    fn check(pattern: &str, yes: &[&[u8]], no: &[&[u8]]) {
        let parsed = parse(pattern).unwrap();
        let nfa = Nfa::from_ast(&parsed.ast, !parsed.anchored_start);
        for y in yes {
            assert!(nfa_matches(&nfa, y), "{pattern} should match {y:?}");
        }
        for n in no {
            assert!(!nfa_matches(&nfa, n), "{pattern} should not match {n:?}");
        }
    }

    #[test]
    fn literal() {
        check("abc", &[b"abc", b"zabcz"], &[b"ab", b"acb"]);
    }

    #[test]
    fn alternation() {
        check("a|b", &[b"xa", b"b"], &[b"c", b""]);
    }

    #[test]
    fn star_accepts_empty() {
        check("a*", &[b"", b"aaa", b"zzz"], &[]);
    }

    #[test]
    fn plus_requires_one() {
        // NFA-level matching is prefix-free (no `$` handling at this
        // layer — the DFA layer owns end anchoring).
        check("a+", &[b"a", b"za", b"aa"], &[b"", b"z"]);
    }

    #[test]
    fn anchored_vs_unanchored() {
        let parsed = parse("^ab").unwrap();
        let anchored = Nfa::from_ast(&parsed.ast, false);
        assert!(nfa_matches(&anchored, b"abz"));
        assert!(!nfa_matches(&anchored, b"zab"));
        let unanchored = Nfa::from_ast(&parsed.ast, true);
        assert!(nfa_matches(&unanchored, b"zab"));
    }

    #[test]
    fn epsilon_closure_is_sorted_and_deduped() {
        let parsed = parse("(a|b|c)*").unwrap();
        let nfa = Nfa::from_ast(&parsed.ast, true);
        let cl = nfa.epsilon_closure(&[nfa.start(), nfa.start()]);
        let mut sorted = cl.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(cl, sorted);
    }
}
