//! Recursive-descent regex parser.
//!
//! Grammar (standard precedence — alternation, then concatenation, then
//! postfix repetition):
//!
//! ```text
//! pattern  := '^'? alt '$'?
//! alt      := concat ('|' concat)*
//! concat   := repeat*
//! repeat   := atom ('*' | '+' | '?' | '{' bounds '}')*
//! atom     := literal | '.' | class | '(' alt ')' | escape
//! class    := '[' '^'? item+ ']'      item := byte | byte '-' byte
//! escape   := '\' (d | D | w | W | s | S | metachar)
//! ```
//!
//! Counted repeats are desugared into `?`/`*` combinations. Anchors are
//! only supported at the pattern boundaries, which is where the paper's
//! LIKE-style predicates put them.

use crate::ast::{Ast, ByteSet};
use crate::RegexError;

/// Maximum count in `{m,n}` — keeps the desugared tree small.
const MAX_REPEAT: u32 = 256;

/// Result of parsing: the tree plus top-level anchor flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The pattern body.
    pub ast: Ast,
    /// Pattern began with `^`.
    pub anchored_start: bool,
    /// Pattern ended with `$`.
    pub anchored_end: bool,
}

/// Parse a pattern string.
pub fn parse(pattern: &str) -> Result<Parsed, RegexError> {
    let bytes = pattern.as_bytes();
    let (anchored_start, body_start) = if bytes.first() == Some(&b'^') {
        (true, 1)
    } else {
        (false, 0)
    };
    let (anchored_end, body_end) = if bytes.len() > body_start && bytes.last() == Some(&b'$') {
        // `\$` at the end is a literal dollar, not an anchor.
        let escaped = bytes.len() >= 2 && bytes[bytes.len() - 2] == b'\\';
        if escaped {
            (false, bytes.len())
        } else {
            (true, bytes.len() - 1)
        }
    } else {
        (false, bytes.len())
    };

    let mut p = Parser {
        input: &bytes[body_start..body_end],
        pos: 0,
        base: body_start,
    };
    let ast = p.parse_alt()?;
    if p.pos != p.input.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(Parsed {
        ast,
        anchored_start,
        anchored_end,
    })
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    base: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> RegexError {
        RegexError::Syntax {
            pos: self.base + self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat(b'|') {
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let mut node = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    node = Ast::Star(Box::new(node));
                }
                Some(b'+') => {
                    self.pos += 1;
                    node = Ast::Plus(Box::new(node));
                }
                Some(b'?') => {
                    self.pos += 1;
                    node = Ast::Question(Box::new(node));
                }
                Some(b'{') => {
                    self.pos += 1;
                    node = self.parse_bounds(node)?;
                }
                _ => break,
            }
        }
        Ok(node)
    }

    /// Parse `{m}`, `{m,}` or `{m,n}` and desugar.
    fn parse_bounds(&mut self, inner: Ast) -> Result<Ast, RegexError> {
        let min = self.parse_number()?;
        let max = if self.eat(b',') {
            if self.peek() == Some(b'}') {
                None
            } else {
                Some(self.parse_number()?)
            }
        } else {
            Some(min)
        };
        if !self.eat(b'}') {
            return Err(self.err("expected '}' after repeat bounds"));
        }
        if let Some(max) = max {
            if max < min {
                return Err(self.err(format!("repeat bounds reversed: {{{min},{max}}}")));
            }
        }
        if inner.node_count() as u64 * u64::from(max.unwrap_or(min).max(1)) > 65_536 {
            return Err(self.err("desugared repeat too large"));
        }

        // Desugar: min copies, then (max-min) optional copies or a star.
        let mut parts = Vec::new();
        for _ in 0..min {
            parts.push(inner.clone());
        }
        match max {
            None => parts.push(Ast::Star(Box::new(inner))),
            Some(max) => {
                for _ in min..max {
                    parts.push(Ast::Question(Box::new(inner.clone())));
                }
            }
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("digits are ascii");
        let n: u32 = text
            .parse()
            .map_err(|_| self.err(format!("repeat count too large: {text}")))?;
        if n > MAX_REPEAT {
            return Err(self.err(format!("repeat count {n} exceeds maximum {MAX_REPEAT}")));
        }
        Ok(n)
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Err(self.err("expected an atom")),
            Some(b'(') => {
                let inner = self.parse_alt()?;
                if !self.eat(b')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some(b'.') => Ok(Ast::Class(ByteSet::full())),
            Some(b'[') => self.parse_class(),
            Some(b'\\') => self.parse_escape(),
            Some(b @ (b'*' | b'+' | b'?')) => {
                self.pos -= 1;
                Err(self.err(format!("dangling repetition operator '{}'", b as char)))
            }
            Some(b')') => {
                self.pos -= 1;
                Err(self.err("unmatched ')'"))
            }
            Some(b'{') => {
                self.pos -= 1;
                Err(self.err("repeat bounds with nothing to repeat"))
            }
            Some(b'^') | Some(b'$') => {
                self.pos -= 1;
                Err(self.err("anchors are only supported at the pattern boundaries"))
            }
            Some(b) => Ok(Ast::literal(b)),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let negated = self.eat(b'^');
        let mut set = ByteSet::empty();
        let mut any = false;
        loop {
            let b = match self.bump() {
                None => return Err(self.err("unclosed character class")),
                Some(b']') if any => break,
                Some(b']') => {
                    // A `]` first in the class is a literal.
                    b']'
                }
                Some(b'\\') => self.class_escape()?,
                Some(b) => b,
            };
            any = true;
            // Range? `-` at the end of the class is a literal dash.
            if self.peek() == Some(b'-') && self.input.get(self.pos + 1) != Some(&b']') {
                self.pos += 1; // consume '-'
                let hi = match self.bump() {
                    None => return Err(self.err("unclosed character class")),
                    Some(b'\\') => self.class_escape()?,
                    Some(hi) => hi,
                };
                if hi < b {
                    return Err(
                        self.err(format!("invalid class range {}-{}", b as char, hi as char))
                    );
                }
                set = set.union(&ByteSet::range(b, hi));
            } else {
                set.insert(b);
            }
        }
        Ok(Ast::Class(if negated { set.negate() } else { set }))
    }

    /// Escape inside a class: only single-byte escapes.
    fn class_escape(&mut self) -> Result<u8, RegexError> {
        match self.bump() {
            None => Err(self.err("dangling escape")),
            Some(b'n') => Ok(b'\n'),
            Some(b't') => Ok(b'\t'),
            Some(b'r') => Ok(b'\r'),
            Some(b'0') => Ok(0),
            Some(b) => Ok(b),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, RegexError> {
        let set = match self.bump() {
            None => return Err(self.err("dangling escape")),
            Some(b'd') => ByteSet::range(b'0', b'9'),
            Some(b'D') => ByteSet::range(b'0', b'9').negate(),
            Some(b'w') => word_set(),
            Some(b'W') => word_set().negate(),
            Some(b's') => space_set(),
            Some(b'S') => space_set().negate(),
            Some(b'n') => ByteSet::single(b'\n'),
            Some(b't') => ByteSet::single(b'\t'),
            Some(b'r') => ByteSet::single(b'\r'),
            Some(b'0') => ByteSet::single(0),
            // Escaped metacharacters (and any other byte) become literals.
            Some(b) => ByteSet::single(b),
        };
        Ok(Ast::Class(set))
    }
}

fn word_set() -> ByteSet {
    ByteSet::range(b'a', b'z')
        .union(&ByteSet::range(b'A', b'Z'))
        .union(&ByteSet::range(b'0', b'9'))
        .union(&ByteSet::single(b'_'))
}

fn space_set() -> ByteSet {
    let mut s = ByteSet::empty();
    for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
        s.insert(b);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_concat() {
        let p = parse("ab").unwrap();
        assert!(!p.anchored_start && !p.anchored_end);
        assert_eq!(p.ast, Ast::literal_str(b"ab"));
    }

    #[test]
    fn anchors_detected() {
        let p = parse("^a$").unwrap();
        assert!(p.anchored_start && p.anchored_end);
        assert_eq!(p.ast, Ast::literal(b'a'));
        // Escaped dollar is literal.
        let p = parse(r"a\$").unwrap();
        assert!(!p.anchored_end);
    }

    #[test]
    fn precedence_alt_binds_loosest() {
        let p = parse("ab|c").unwrap();
        assert_eq!(
            p.ast,
            Ast::Alt(vec![Ast::literal_str(b"ab"), Ast::literal(b'c')])
        );
    }

    #[test]
    fn star_binds_to_atom() {
        let p = parse("ab*").unwrap();
        assert_eq!(
            p.ast,
            Ast::Concat(vec![
                Ast::literal(b'a'),
                Ast::Star(Box::new(Ast::literal(b'b')))
            ])
        );
    }

    #[test]
    fn class_variants() {
        assert!(parse("[abc]").is_ok());
        assert!(parse("[a-z0-9_]").is_ok());
        assert!(parse("[^a-z]").is_ok());
        assert!(parse("[]]").is_ok()); // leading ] is literal
        assert!(parse("[a-]").is_ok()); // trailing - is literal
        assert!(parse("[z-a]").is_err());
        assert!(parse("[abc").is_err());
    }

    #[test]
    fn counted_repeat_desugars() {
        let p = parse("a{2,3}").unwrap();
        assert_eq!(
            p.ast,
            Ast::Concat(vec![
                Ast::literal(b'a'),
                Ast::literal(b'a'),
                Ast::Question(Box::new(Ast::literal(b'a'))),
            ])
        );
        let p = parse("a{0,1}").unwrap();
        assert_eq!(p.ast, Ast::Question(Box::new(Ast::literal(b'a'))));
        let p = parse("a{2,}").unwrap();
        assert_eq!(
            p.ast,
            Ast::Concat(vec![
                Ast::literal(b'a'),
                Ast::literal(b'a'),
                Ast::Star(Box::new(Ast::literal(b'a'))),
            ])
        );
    }

    #[test]
    fn repeat_errors() {
        assert!(parse("a{3,2}").is_err());
        assert!(parse("a{}").is_err());
        assert!(parse("a{9999}").is_err());
        assert!(parse("{3}").is_err());
    }

    #[test]
    fn nested_anchor_rejected() {
        assert!(parse("a^b").is_err());
        assert!(parse("a$b").is_err());
    }

    #[test]
    fn error_positions_are_absolute() {
        let err = parse("^ab(").unwrap_err();
        match err {
            RegexError::Syntax { pos, .. } => assert_eq!(pos, 4),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
