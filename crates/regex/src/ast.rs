//! Regex abstract syntax and byte sets.

/// A set of bytes, represented as a 256-bit bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub const fn empty() -> Self {
        ByteSet { bits: [0; 4] }
    }

    /// The full set (what `.` matches; we do not special-case `\n`,
    /// matching the byte-stream semantics of the FPGA engines).
    pub const fn full() -> Self {
        ByteSet {
            bits: [u64::MAX; 4],
        }
    }

    /// A singleton set.
    pub fn single(b: u8) -> Self {
        let mut s = ByteSet::empty();
        s.insert(b);
        s
    }

    /// An inclusive range `[lo, hi]`.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut s = ByteSet::empty();
        for b in lo..=hi {
            s.insert(b);
        }
        s
    }

    /// Insert one byte.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Membership test.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Set union.
    pub fn union(&self, other: &ByteSet) -> ByteSet {
        ByteSet {
            bits: [
                self.bits[0] | other.bits[0],
                self.bits[1] | other.bits[1],
                self.bits[2] | other.bits[2],
                self.bits[3] | other.bits[3],
            ],
        }
    }

    /// Complement.
    pub fn negate(&self) -> ByteSet {
        ByteSet {
            bits: [!self.bits[0], !self.bits[1], !self.bits[2], !self.bits[3]],
        }
    }

    /// Number of bytes in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// Iterate over member bytes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).filter_map(|b| {
            let b = b as u8;
            self.contains(b).then_some(b)
        })
    }
}

/// Parsed regex syntax tree.
///
/// Counted repeats are desugared by the parser (`a{2,4}` becomes
/// `aaa?a?`), so the tree only carries the Kleene primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches one byte from the set.
    Class(ByteSet),
    /// Concatenation, in order.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Zero or more.
    Star(Box<Ast>),
    /// One or more.
    Plus(Box<Ast>),
    /// Zero or one.
    Question(Box<Ast>),
}

impl Ast {
    /// Convenience: a single-byte literal.
    pub fn literal(b: u8) -> Ast {
        Ast::Class(ByteSet::single(b))
    }

    /// Convenience: a literal byte string.
    pub fn literal_str(s: &[u8]) -> Ast {
        Ast::Concat(s.iter().map(|&b| Ast::literal(b)).collect())
    }

    /// Size of the tree in nodes (used to bound desugared repeats).
    pub fn node_count(&self) -> usize {
        match self {
            Ast::Empty | Ast::Class(_) => 1,
            Ast::Concat(xs) | Ast::Alt(xs) => 1 + xs.iter().map(Ast::node_count).sum::<usize>(),
            Ast::Star(x) | Ast::Plus(x) | Ast::Question(x) => 1 + x.node_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byteset_basics() {
        let mut s = ByteSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(255);
        assert_eq!(s.len(), 4);
        for b in [0u8, 63, 64, 255] {
            assert!(s.contains(b));
        }
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 255]);
    }

    #[test]
    fn range_and_negate() {
        let digits = ByteSet::range(b'0', b'9');
        assert_eq!(digits.len(), 10);
        let not_digits = digits.negate();
        assert_eq!(not_digits.len(), 246);
        assert!(not_digits.contains(b'a'));
        assert!(!not_digits.contains(b'5'));
        assert_eq!(ByteSet::full().len(), 256);
    }

    #[test]
    fn union() {
        let s = ByteSet::range(b'a', b'c').union(&ByteSet::single(b'z'));
        assert_eq!(s.len(), 4);
        assert!(s.contains(b'z'));
    }

    #[test]
    fn node_count() {
        let ast = Ast::Concat(vec![
            Ast::literal(b'a'),
            Ast::Star(Box::new(Ast::literal(b'b'))),
        ]);
        assert_eq!(ast.node_count(), 4);
    }
}
