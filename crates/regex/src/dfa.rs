//! Subset-construction DFA.
//!
//! Eager determinization with a dense 256-way transition table per state.
//! The state budget guards against pathological patterns; the evaluation
//! patterns of the paper compile to a handful of states.
//!
//! Matching is O(1) per input byte — the property the paper highlights
//! for the FPGA engines ("the performance of the operator is dominated by
//! the length of the string and does not depend on the complexity of the
//! regular expression", §5.3).

use std::collections::HashMap;

use crate::nfa::{Nfa, StateId};
use crate::RegexError;

/// Sentinel for "no transition".
pub const DEAD: u32 = u32::MAX;

/// A dense deterministic automaton.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// `transitions[state * 256 + byte]` is the next state or [`DEAD`].
    transitions: Vec<u32>,
    accepting: Vec<bool>,
    start: u32,
}

impl Dfa {
    /// Determinize `nfa`, failing if more than `state_limit` DFA states
    /// are needed.
    pub fn determinize(nfa: &Nfa, state_limit: usize) -> Result<Dfa, RegexError> {
        let start_set = nfa.epsilon_closure(&[nfa.start()]);
        let mut index: HashMap<Vec<StateId>, u32> = HashMap::new();
        let mut sets: Vec<Vec<StateId>> = Vec::new();
        let mut transitions: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();

        /// Intern a closure set, returning `(id, already_existed)`.
        fn intern(
            set: Vec<StateId>,
            accept_state: StateId,
            state_limit: usize,
            index: &mut HashMap<Vec<StateId>, u32>,
            sets: &mut Vec<Vec<StateId>>,
            accepting: &mut Vec<bool>,
            transitions: &mut Vec<u32>,
        ) -> Result<(u32, bool), RegexError> {
            if let Some(&id) = index.get(&set) {
                return Ok((id, true));
            }
            if sets.len() >= state_limit {
                return Err(RegexError::TooComplex { limit: state_limit });
            }
            let id = u32::try_from(sets.len()).expect("state limit fits u32");
            accepting.push(set.binary_search(&accept_state).is_ok());
            index.insert(set.clone(), id);
            sets.push(set);
            transitions.extend(std::iter::repeat_n(DEAD, 256));
            Ok((id, false))
        }

        let (start, _) = intern(
            start_set,
            nfa.accept(),
            state_limit,
            &mut index,
            &mut sets,
            &mut accepting,
            &mut transitions,
        )?;
        let mut work = vec![start];
        let mut moved: Vec<StateId> = Vec::new();

        while let Some(d) = work.pop() {
            // For each byte, gather NFA targets of the member states.
            for byte in 0u16..256 {
                let b = byte as u8;
                moved.clear();
                for &s in &sets[d as usize] {
                    for (set, t) in &nfa.states()[s as usize].byte_edges {
                        if set.contains(b) {
                            moved.push(*t);
                        }
                    }
                }
                if moved.is_empty() {
                    continue;
                }
                let closure = nfa.epsilon_closure(&moved);
                let (target, existed) = intern(
                    closure,
                    nfa.accept(),
                    state_limit,
                    &mut index,
                    &mut sets,
                    &mut accepting,
                    &mut transitions,
                )?;
                if !existed {
                    work.push(target);
                }
                transitions[d as usize * 256 + byte as usize] = target;
            }
        }

        Ok(Dfa {
            transitions,
            accepting,
            start,
        })
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// Start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One transition step.
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        if state == DEAD {
            return DEAD;
        }
        self.transitions[state as usize * 256 + byte as usize]
    }

    /// Is `state` accepting?
    #[inline]
    pub fn is_accepting(&self, state: u32) -> bool {
        state != DEAD && self.accepting[state as usize]
    }

    /// Unanchored-end match: true as soon as any prefix of the scan
    /// reaches an accepting state (the NFA's unanchored-start loop is
    /// already baked into the transitions).
    pub fn matches_prefix_free(&self, haystack: &[u8]) -> bool {
        self.shortest_match_end(haystack).is_some()
    }

    /// End offset of the shortest match, scanning left to right.
    pub fn shortest_match_end(&self, haystack: &[u8]) -> Option<usize> {
        let mut state = self.start;
        if self.is_accepting(state) {
            return Some(0);
        }
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            if state == DEAD {
                // With an unanchored-start loop the start state can never
                // die; a DEAD here means the pattern was start-anchored
                // and has failed for good.
                return None;
            }
            if self.is_accepting(state) {
                return Some(i + 1);
            }
        }
        None
    }

    /// Derive a start-state [`Prefilter`], or `None` when skipping
    /// cannot pay:
    ///
    /// * the start state accepts (the empty match is everywhere), or
    /// * too few bytes loop on the start state — e.g. start-anchored
    ///   patterns, where a non-matching byte goes [`DEAD`] rather than
    ///   back to start, so the skip set is empty.
    ///
    /// The filter is *exact*, not approximate: a byte `b` with
    /// `step(start, b) == start` makes no progress, so jumping over a run
    /// of such bytes visits exactly the states the plain walk would.
    pub fn prefilter(&self) -> Option<Prefilter> {
        if self.is_accepting(self.start) {
            return None;
        }
        let mut skip = [false; 256];
        let mut progress: Option<u8> = None;
        let mut progress_count = 0usize;
        for byte in 0u16..256 {
            let b = byte as u8;
            if self.step(self.start, b) == self.start {
                skip[b as usize] = true;
            } else {
                progress = Some(b);
                progress_count += 1;
            }
        }
        // Fewer than 3/4 skippable bytes: the scan loop beats the skip
        // loop only marginally; fall back to the plain walk.
        if progress_count > 64 {
            return None;
        }
        Some(Prefilter {
            skip,
            single: if progress_count == 1 { progress } else { None },
        })
    }

    /// [`Dfa::matches_prefix_free`] accelerated by a [`Prefilter`]
    /// derived from this DFA — identical result, but runs of
    /// non-progress bytes are skipped word-at-a-time instead of stepped
    /// through the transition table.
    pub fn matches_prefix_free_with(&self, haystack: &[u8], pf: &Prefilter) -> bool {
        let mut i = 0usize;
        loop {
            let Some(p) = pf.find_progress(haystack, i) else {
                return false;
            };
            // fv:allow(panic): find_progress returns in-bounds indices.
            let mut state = self.step(self.start, haystack[p]);
            i = p + 1;
            loop {
                if state == DEAD {
                    // Only reachable for start-anchored patterns, which
                    // never produce a prefilter; kept for exactness.
                    return false;
                }
                if self.is_accepting(state) {
                    return true;
                }
                if state == self.start {
                    // Back at start: resume skipping.
                    break;
                }
                if i >= haystack.len() {
                    return false;
                }
                // fv:allow(panic): i < haystack.len() checked just above.
                state = self.step(state, haystack[i]);
                i += 1;
            }
        }
    }

    /// End-anchored match: run the whole haystack and test acceptance at
    /// the final position only.
    pub fn accepts_at_end(&self, haystack: &[u8]) -> bool {
        let mut state = self.start;
        for &b in haystack {
            state = self.step(state, b);
            if state == DEAD {
                return false;
            }
        }
        self.is_accepting(state)
    }
}

/// A scan accelerator derived from a DFA's start state (see
/// [`Dfa::prefilter`]): the set of bytes that keep the start state in
/// place, plus — when exactly one byte makes progress — that byte, which
/// enables a memchr-style word-at-a-time skip.
#[derive(Clone)]
pub struct Prefilter {
    /// `skip[b]`: consuming `b` in the start state stays in the start
    /// state.
    skip: [bool; 256],
    /// The single progress byte, when only one exists (e.g. `'s'` for
    /// `smartmem[0-9]+`).
    single: Option<u8>,
}

impl std::fmt::Debug for Prefilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prefilter")
            .field("skippable", &self.skip.iter().filter(|&&s| s).count())
            .field("single", &self.single)
            .finish()
    }
}

impl Prefilter {
    /// Index of the first byte at or after `from` that advances the DFA
    /// out of its start state, or `None` if the rest of the haystack is
    /// all skippable.
    #[inline]
    pub fn find_progress(&self, haystack: &[u8], from: usize) -> Option<usize> {
        let hay = haystack.get(from..)?;
        match self.single {
            Some(b) => find_byte(hay, b).map(|p| from + p),
            None => hay
                .iter()
                .position(|&x| !self.skip[x as usize])
                .map(|p| from + p),
        }
    }

    /// The single progress byte, if the skip set has exactly one hole.
    pub fn single_byte(&self) -> Option<u8> {
        self.single
    }
}

/// SWAR memchr: scan for `needle` eight bytes at a time using the
/// classic `(x - 0x01…) & !x & 0x80…` zero-byte trick (no `unsafe`, no
/// platform intrinsics; the workspace forbids unsafe code).
fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let broadcast = LO.wrapping_mul(needle as u64);
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for c in &mut chunks {
        // fv:allow(panic): chunks_exact(8) yields exactly 8 bytes.
        let word = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        let x = word ^ broadcast;
        let hit = x.wrapping_sub(LO) & !x & HI;
        if hit != 0 {
            // from_le_bytes + trailing_zeros keeps this endian-correct.
            return Some(base + (hit.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&x| x == needle)
        .map(|p| base + p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn dfa_for(pattern: &str) -> (Dfa, bool) {
        let parsed = parse(pattern).unwrap();
        let nfa = Nfa::from_ast(&parsed.ast, !parsed.anchored_start);
        (Dfa::determinize(&nfa, 8192).unwrap(), parsed.anchored_end)
    }

    #[test]
    fn literal_search() {
        let (dfa, _) = dfa_for("needle");
        assert!(dfa.matches_prefix_free(b"hay needle hay"));
        assert!(!dfa.matches_prefix_free(b"haystack"));
    }

    #[test]
    fn shortest_match_is_leftmost() {
        let (dfa, _) = dfa_for("ab");
        assert_eq!(dfa.shortest_match_end(b"zzabzzab"), Some(4));
    }

    #[test]
    fn anchored_end() {
        let (dfa, anchored_end) = dfa_for("abc$");
        assert!(anchored_end);
        assert!(dfa.accepts_at_end(b"zzzabc"));
        assert!(!dfa.accepts_at_end(b"abczzz"));
    }

    #[test]
    fn start_anchored_dies_cleanly() {
        let (dfa, _) = dfa_for("^abc");
        assert!(dfa.matches_prefix_free(b"abcdef"));
        assert!(!dfa.matches_prefix_free(b"zabc"));
    }

    #[test]
    fn prefilter_exists_for_rare_first_byte() {
        let (dfa, _) = dfa_for("smartmem[0-9]+");
        let pf = dfa.prefilter().expect("one progress byte");
        assert_eq!(pf.single_byte(), Some(b's'));
        assert_eq!(pf.find_progress(b"aaasaaa", 0), Some(3));
        assert_eq!(pf.find_progress(b"aaasaaa", 4), None);
        assert_eq!(pf.find_progress(b"", 0), None);
    }

    #[test]
    fn prefilter_absent_when_it_cannot_pay() {
        // Start-anchored: non-progress bytes go DEAD, not back to start.
        let (dfa, _) = dfa_for("^abc");
        assert!(dfa.prefilter().is_none(), "anchored start has no skip set");
        // Empty pattern: start accepts.
        let (dfa, _) = dfa_for("");
        assert!(dfa.prefilter().is_none(), "accepting start never skips");
        // `.` makes every byte a progress byte.
        let (dfa, _) = dfa_for(".x");
        assert!(dfa.prefilter().is_none(), "dense progress set never skips");
    }

    #[test]
    fn prefiltered_match_agrees_with_plain_walk() {
        for pattern in ["smartmem[0-9]+", "ab+c", "x(y|z)", "needle"] {
            let (dfa, _) = dfa_for(pattern);
            let Some(pf) = dfa.prefilter() else {
                panic!("{pattern} should produce a prefilter");
            };
            let haystacks: Vec<&[u8]> = vec![
                b"",
                b"smartmem42",
                b"zzzzzzzzzzzzzzzzsmartmem7zz",
                b"smartmem",
                b"abbbbc",
                b"xy xz",
                b"a needle in a haystack",
                b"nnneeedle",
                b"\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0",
                b"sssssssssssssssss",
                b"ending in s",
            ];
            for hay in haystacks {
                assert_eq!(
                    dfa.matches_prefix_free_with(hay, &pf),
                    dfa.matches_prefix_free(hay),
                    "pattern {pattern:?} haystack {hay:?}"
                );
            }
        }
    }

    #[test]
    fn find_byte_matches_naive_scan() {
        // Cross every alignment/length against the naive position().
        let hay: Vec<u8> = (0..64u8).map(|i| i % 7).collect();
        for start in 0..hay.len() {
            for needle in 0..7u8 {
                assert_eq!(
                    find_byte(&hay[start..], needle),
                    hay[start..].iter().position(|&x| x == needle),
                    "start {start} needle {needle}"
                );
            }
        }
        assert_eq!(find_byte(b"", 0), None);
        assert_eq!(find_byte(b"abc", b'q'), None);
    }

    #[test]
    fn state_budget() {
        let parsed = parse("abcd").unwrap();
        let nfa = Nfa::from_ast(&parsed.ast, true);
        assert!(matches!(
            Dfa::determinize(&nfa, 3),
            Err(RegexError::TooComplex { limit: 3 })
        ));
    }

    #[test]
    fn dfa_state_count_is_reasonable() {
        // The classic (a|b)*a(a|b){3} needs 2^4 states as a DFA — subset
        // construction must realize exactly that blowup, no more.
        let parsed = parse("^(a|b)*a(a|b){3}$").unwrap();
        let nfa = Nfa::from_ast(&parsed.ast, false);
        let dfa = Dfa::determinize(&nfa, 8192).unwrap();
        assert!(dfa.state_count() <= 32, "got {}", dfa.state_count());
        // "abbbabbb": the 4th symbol from the end is 'a' -> accepted.
        assert!(dfa.accepts_at_end(b"abbbabbb"));
        // "abbbbbbb": the 4th from the end is 'b' -> rejected.
        assert!(!dfa.accepts_at_end(b"abbbbbbb"));
    }
}
