//! Subset-construction DFA.
//!
//! Eager determinization with a dense 256-way transition table per state.
//! The state budget guards against pathological patterns; the evaluation
//! patterns of the paper compile to a handful of states.
//!
//! Matching is O(1) per input byte — the property the paper highlights
//! for the FPGA engines ("the performance of the operator is dominated by
//! the length of the string and does not depend on the complexity of the
//! regular expression", §5.3).

use std::collections::HashMap;

use crate::nfa::{Nfa, StateId};
use crate::RegexError;

/// Sentinel for "no transition".
pub const DEAD: u32 = u32::MAX;

/// A dense deterministic automaton.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// `transitions[state * 256 + byte]` is the next state or [`DEAD`].
    transitions: Vec<u32>,
    accepting: Vec<bool>,
    start: u32,
}

impl Dfa {
    /// Determinize `nfa`, failing if more than `state_limit` DFA states
    /// are needed.
    pub fn determinize(nfa: &Nfa, state_limit: usize) -> Result<Dfa, RegexError> {
        let start_set = nfa.epsilon_closure(&[nfa.start()]);
        let mut index: HashMap<Vec<StateId>, u32> = HashMap::new();
        let mut sets: Vec<Vec<StateId>> = Vec::new();
        let mut transitions: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();

        /// Intern a closure set, returning `(id, already_existed)`.
        fn intern(
            set: Vec<StateId>,
            accept_state: StateId,
            state_limit: usize,
            index: &mut HashMap<Vec<StateId>, u32>,
            sets: &mut Vec<Vec<StateId>>,
            accepting: &mut Vec<bool>,
            transitions: &mut Vec<u32>,
        ) -> Result<(u32, bool), RegexError> {
            if let Some(&id) = index.get(&set) {
                return Ok((id, true));
            }
            if sets.len() >= state_limit {
                return Err(RegexError::TooComplex { limit: state_limit });
            }
            let id = u32::try_from(sets.len()).expect("state limit fits u32");
            accepting.push(set.binary_search(&accept_state).is_ok());
            index.insert(set.clone(), id);
            sets.push(set);
            transitions.extend(std::iter::repeat_n(DEAD, 256));
            Ok((id, false))
        }

        let (start, _) = intern(
            start_set,
            nfa.accept(),
            state_limit,
            &mut index,
            &mut sets,
            &mut accepting,
            &mut transitions,
        )?;
        let mut work = vec![start];
        let mut moved: Vec<StateId> = Vec::new();

        while let Some(d) = work.pop() {
            // For each byte, gather NFA targets of the member states.
            for byte in 0u16..256 {
                let b = byte as u8;
                moved.clear();
                for &s in &sets[d as usize] {
                    for (set, t) in &nfa.states()[s as usize].byte_edges {
                        if set.contains(b) {
                            moved.push(*t);
                        }
                    }
                }
                if moved.is_empty() {
                    continue;
                }
                let closure = nfa.epsilon_closure(&moved);
                let (target, existed) = intern(
                    closure,
                    nfa.accept(),
                    state_limit,
                    &mut index,
                    &mut sets,
                    &mut accepting,
                    &mut transitions,
                )?;
                if !existed {
                    work.push(target);
                }
                transitions[d as usize * 256 + byte as usize] = target;
            }
        }

        Ok(Dfa {
            transitions,
            accepting,
            start,
        })
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// Start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One transition step.
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        if state == DEAD {
            return DEAD;
        }
        self.transitions[state as usize * 256 + byte as usize]
    }

    /// Is `state` accepting?
    #[inline]
    pub fn is_accepting(&self, state: u32) -> bool {
        state != DEAD && self.accepting[state as usize]
    }

    /// Unanchored-end match: true as soon as any prefix of the scan
    /// reaches an accepting state (the NFA's unanchored-start loop is
    /// already baked into the transitions).
    pub fn matches_prefix_free(&self, haystack: &[u8]) -> bool {
        self.shortest_match_end(haystack).is_some()
    }

    /// End offset of the shortest match, scanning left to right.
    pub fn shortest_match_end(&self, haystack: &[u8]) -> Option<usize> {
        let mut state = self.start;
        if self.is_accepting(state) {
            return Some(0);
        }
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            if state == DEAD {
                // With an unanchored-start loop the start state can never
                // die; a DEAD here means the pattern was start-anchored
                // and has failed for good.
                return None;
            }
            if self.is_accepting(state) {
                return Some(i + 1);
            }
        }
        None
    }

    /// End-anchored match: run the whole haystack and test acceptance at
    /// the final position only.
    pub fn accepts_at_end(&self, haystack: &[u8]) -> bool {
        let mut state = self.start;
        for &b in haystack {
            state = self.step(state, b);
            if state == DEAD {
                return false;
            }
        }
        self.is_accepting(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn dfa_for(pattern: &str) -> (Dfa, bool) {
        let parsed = parse(pattern).unwrap();
        let nfa = Nfa::from_ast(&parsed.ast, !parsed.anchored_start);
        (Dfa::determinize(&nfa, 8192).unwrap(), parsed.anchored_end)
    }

    #[test]
    fn literal_search() {
        let (dfa, _) = dfa_for("needle");
        assert!(dfa.matches_prefix_free(b"hay needle hay"));
        assert!(!dfa.matches_prefix_free(b"haystack"));
    }

    #[test]
    fn shortest_match_is_leftmost() {
        let (dfa, _) = dfa_for("ab");
        assert_eq!(dfa.shortest_match_end(b"zzabzzab"), Some(4));
    }

    #[test]
    fn anchored_end() {
        let (dfa, anchored_end) = dfa_for("abc$");
        assert!(anchored_end);
        assert!(dfa.accepts_at_end(b"zzzabc"));
        assert!(!dfa.accepts_at_end(b"abczzz"));
    }

    #[test]
    fn start_anchored_dies_cleanly() {
        let (dfa, _) = dfa_for("^abc");
        assert!(dfa.matches_prefix_free(b"abcdef"));
        assert!(!dfa.matches_prefix_free(b"zabc"));
    }

    #[test]
    fn state_budget() {
        let parsed = parse("abcd").unwrap();
        let nfa = Nfa::from_ast(&parsed.ast, true);
        assert!(matches!(
            Dfa::determinize(&nfa, 3),
            Err(RegexError::TooComplex { limit: 3 })
        ));
    }

    #[test]
    fn dfa_state_count_is_reasonable() {
        // The classic (a|b)*a(a|b){3} needs 2^4 states as a DFA — subset
        // construction must realize exactly that blowup, no more.
        let parsed = parse("^(a|b)*a(a|b){3}$").unwrap();
        let nfa = Nfa::from_ast(&parsed.ast, false);
        let dfa = Dfa::determinize(&nfa, 8192).unwrap();
        assert!(dfa.state_count() <= 32, "got {}", dfa.state_count());
        // "abbbabbb": the 4th symbol from the end is 'a' -> accepted.
        assert!(dfa.accepts_at_end(b"abbbabbb"));
        // "abbbbbbb": the 4th from the end is 'b' -> rejected.
        assert!(!dfa.accepts_at_end(b"abbbbbbb"));
    }
}
