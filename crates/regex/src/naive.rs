//! A deliberately simple backtracking matcher over the AST.
//!
//! This is the *oracle* implementation: obviously correct, exponentially
//! slow in the worst case, used only by tests (including the property
//! tests in `tests/`) to validate the NFA/DFA pipeline. It is `pub` so
//! integration tests and proptest harnesses outside the crate can use it.

use crate::ast::Ast;

/// Does `ast` match somewhere in `input` (unanchored on both sides)?
pub fn search(ast: &Ast, input: &[u8]) -> bool {
    (0..=input.len()).any(|start| match_here(ast, &input[start..], &mut |_| true))
}

/// Does `ast` match a prefix of `input` starting at offset 0?
pub fn match_prefix(ast: &Ast, input: &[u8]) -> bool {
    match_here(ast, input, &mut |_| true)
}

/// Does `ast` match `input` exactly (both ends anchored)?
pub fn match_exact(ast: &Ast, input: &[u8]) -> bool {
    match_here(ast, input, &mut |rest: &[u8]| rest.is_empty())
}

/// Continuation-passing backtracking: `k` receives the remaining input
/// after a candidate match of `ast` and decides whether to accept.
fn match_here(ast: &Ast, input: &[u8], k: &mut dyn FnMut(&[u8]) -> bool) -> bool {
    match ast {
        Ast::Empty => k(input),
        Ast::Class(set) => match input.first() {
            Some(&b) if set.contains(b) => k(&input[1..]),
            _ => false,
        },
        Ast::Concat(parts) => match_seq(parts, input, k),
        Ast::Alt(branches) => branches.iter().any(|br| match_here(br, input, k)),
        Ast::Star(inner) => match_star(inner, input, k),
        Ast::Plus(inner) => {
            // One mandatory copy, then a star.
            match_here(inner, input, &mut |rest| match_star(inner, rest, k))
        }
        Ast::Question(inner) => match_here(inner, input, k) || k(input),
    }
}

fn match_seq(parts: &[Ast], input: &[u8], k: &mut dyn FnMut(&[u8]) -> bool) -> bool {
    match parts.split_first() {
        None => k(input),
        Some((head, tail)) => match_here(head, input, &mut |rest| match_seq(tail, rest, k)),
    }
}

fn match_star(inner: &Ast, input: &[u8], k: &mut dyn FnMut(&[u8]) -> bool) -> bool {
    // Try the empty match first (shortest), then recurse with progress.
    if k(input) {
        return true;
    }
    match_here(inner, input, &mut |rest| {
        // Require progress to avoid infinite loops on nullable inners.
        rest.len() < input.len() && match_star(inner, rest, k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ast(pattern: &str) -> Ast {
        parse(pattern).unwrap().ast
    }

    #[test]
    fn search_basics() {
        assert!(search(&ast("abc"), b"xxabcxx"));
        assert!(!search(&ast("abc"), b"abx"));
    }

    #[test]
    fn exact_basics() {
        assert!(match_exact(&ast("a+b"), b"aaab"));
        assert!(!match_exact(&ast("a+b"), b"aaabc"));
    }

    #[test]
    fn nullable_star_terminates() {
        // (a?)* is nullable inside a star — the progress check must stop
        // the recursion.
        assert!(search(&ast("(a?)*b"), b"b"));
        assert!(search(&ast("(a?)*b"), b"aab"));
        assert!(!match_exact(&ast("(a?)*"), b"b"));
    }

    /// The DFA and the oracle must agree on a grid of patterns × inputs.
    #[test]
    fn oracle_agrees_with_dfa_on_grid() {
        let patterns = [
            "a", "ab", "a|b", "a*", "a+b*", "(ab)+", "a(b|c)*d", "[ab]+c?", "a{2,3}b", "(a|bb)*c",
        ];
        let alphabet = [b'a', b'b', b'c', b'd'];
        let mut inputs: Vec<Vec<u8>> = vec![vec![]];
        for len in 1..=4usize {
            let mut next = Vec::new();
            for i in 0..alphabet.len().pow(len as u32) {
                let mut word = Vec::with_capacity(len);
                let mut x = i;
                for _ in 0..len {
                    word.push(alphabet[x % alphabet.len()]);
                    x /= alphabet.len();
                }
                next.push(word);
            }
            inputs.extend(next);
        }
        for p in patterns {
            let re = crate::Regex::compile(p).unwrap();
            let tree = ast(p);
            for input in &inputs {
                assert_eq!(
                    re.is_match(input),
                    search(&tree, input),
                    "disagreement on pattern {p:?} input {input:?}"
                );
            }
        }
    }
}
