//! Crate-level property tests for the regex engine (beyond the oracle
//! grid in the unit tests): compile stability, search semantics algebra.

use proptest::prelude::*;

use fv_regex::Regex;

fn arb_literal() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', b'x']), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A literal pattern matches exactly the haystacks containing it.
    #[test]
    fn literal_search_is_substring_search(
        needle in arb_literal(),
        hay in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', b'x']), 0..30),
    ) {
        let pattern: String = needle.iter().map(|&b| b as char).collect();
        let re = Regex::compile(&pattern).unwrap();
        let expected = hay.windows(needle.len()).any(|w| w == needle.as_slice());
        prop_assert_eq!(re.is_match(&hay), expected);
    }

    /// `p` matches h  =>  `p|q` matches h (alternation is a superset).
    #[test]
    fn alternation_is_monotone(
        p in arb_literal(),
        q in arb_literal(),
        hay in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..20),
    ) {
        let ps: String = p.iter().map(|&b| b as char).collect();
        let qs: String = q.iter().map(|&b| b as char).collect();
        let re_p = Regex::compile(&ps).unwrap();
        let re_pq = Regex::compile(&format!("{ps}|{qs}")).unwrap();
        if re_p.is_match(&hay) {
            prop_assert!(re_pq.is_match(&hay));
        }
    }

    /// Anchored exact match implies unanchored match.
    #[test]
    fn anchored_implies_unanchored(
        p in arb_literal(),
        hay in prop::collection::vec(prop::sample::select(vec![b'a', b'b']), 0..16),
    ) {
        let ps: String = p.iter().map(|&b| b as char).collect();
        let anchored = Regex::compile(&format!("^{ps}$")).unwrap();
        let free = Regex::compile(&ps).unwrap();
        if anchored.is_match(&hay) {
            prop_assert!(free.is_match(&hay));
        }
    }

    /// `shortest_match_end` returns an offset at which the prefix really
    /// does end a match: re-scanning the prefix must match.
    #[test]
    fn shortest_match_end_is_sound(
        p in arb_literal(),
        hay in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..24),
    ) {
        let ps: String = p.iter().map(|&b| b as char).collect();
        let re = Regex::compile(&ps).unwrap();
        if let Some(end) = re.shortest_match_end(&hay) {
            prop_assert!(end <= hay.len());
            prop_assert!(re.is_match(&hay[..end]));
            // Minimality: no shorter prefix matches.
            if end > 0 {
                prop_assert!(!re.is_match(&hay[..end - 1]));
            }
        }
    }

    /// Compilation is deterministic: equal patterns yield automata with
    /// identical state counts and identical decisions.
    #[test]
    fn compile_is_deterministic(
        p in arb_literal(),
        hay in prop::collection::vec(any::<u8>(), 0..20),
    ) {
        let ps: String = p.iter().map(|&b| b as char).collect();
        let a = Regex::compile(&ps).unwrap();
        let b = Regex::compile(&ps).unwrap();
        prop_assert_eq!(a.state_count(), b.state_count());
        prop_assert_eq!(a.is_match(&hay), b.is_match(&hay));
    }
}
