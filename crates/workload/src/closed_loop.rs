//! Closed-loop client with a configurable queue depth.
//!
//! The throughput experiments need a client that keeps exactly N
//! requests in flight on one queue pair: it posts a doorbell batch of N
//! queries, waits for the batch to drain, and immediately posts the
//! next batch (a closed loop — no think time). This module generates
//! that request stream deterministically as engine-independent data;
//! `fv-bench` lowers each [`TenantQuery`] onto a `PipelineSpec` and
//! drives the batched `farView` verb.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TenantQuery;

/// The generated closed-loop schedule: the query stream already split
/// into doorbell batches of (at most) the configured queue depth.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopPlan {
    /// The queue depth the client sustains (last batch may be shorter).
    pub depth: usize,
    /// Batches in post order; each inner vector is one doorbell ring.
    pub batches: Vec<Vec<TenantQuery>>,
}

impl ClosedLoopPlan {
    /// Total queries across all batches.
    pub fn query_count(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// The flat query stream, in issue order (what a depth-1 client
    /// would run — the sequential baseline of the `qdepth` experiment).
    pub fn flat(&self) -> Vec<TenantQuery> {
        self.batches.iter().flatten().copied().collect()
    }
}

/// Deterministic generator for a closed-loop query stream.
#[derive(Debug, Clone)]
pub struct ClosedLoopGen {
    queries: usize,
    depth: usize,
    seed: u64,
}

impl ClosedLoopGen {
    /// A closed loop issuing `queries` queries in total.
    pub fn new(queries: usize) -> Self {
        assert!(queries > 0, "a closed loop must issue at least one query");
        ClosedLoopGen {
            queries,
            depth: 1,
            seed: 0xD00B_E115_u64,
        }
    }

    /// Queue depth per doorbell batch (default 1 — the unbatched
    /// baseline).
    pub fn depth(mut self, n: usize) -> Self {
        assert!(n > 0, "queue depth must be at least 1");
        self.depth = n;
        self
    }

    /// Fix the RNG seed. The query *stream* depends only on the seed,
    /// not the depth, so plans of different depths over the same seed
    /// batch the identical queries — what lets the `qdepth` experiment
    /// assert byte-identical results across depths.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the schedule.
    pub fn build(&self) -> ClosedLoopPlan {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let stream: Vec<TenantQuery> = (0..self.queries)
            .map(|_| match rng.gen_range(0u32..4) {
                0 => TenantQuery::Select {
                    selectivity: [0.25, 0.5, 0.75][rng.gen_range(0usize..3)],
                },
                1 => TenantQuery::Distinct,
                2 => TenantQuery::GroupBySum,
                _ => TenantQuery::GroupByAvg,
            })
            .collect();
        ClosedLoopPlan {
            depth: self.depth,
            batches: stream.chunks(self.depth).map(<[_]>::to_vec).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_depth_invariant() {
        let d1 = ClosedLoopGen::new(20).depth(1).seed(7).build();
        let d8 = ClosedLoopGen::new(20).depth(8).seed(7).build();
        assert_eq!(d1.flat(), d8.flat(), "same seed, same query stream");
        assert_eq!(d1.batches.len(), 20);
        assert_eq!(d8.batches.len(), 3, "20 queries at depth 8: 8+8+4");
        assert_eq!(d8.batches[2].len(), 4);
        assert_eq!(d8.query_count(), 20);
        assert_eq!(d8.depth, 8);
    }

    #[test]
    fn deterministic_and_mixed() {
        let a = ClosedLoopGen::new(64).depth(4).seed(3).build();
        let b = ClosedLoopGen::new(64).depth(4).seed(3).build();
        assert_eq!(a, b);
        let kinds = a.flat();
        assert!(kinds
            .iter()
            .any(|q| matches!(q, TenantQuery::Select { .. })));
        assert!(kinds.contains(&TenantQuery::Distinct));
        assert!(kinds.contains(&TenantQuery::GroupByAvg));
        let c = ClosedLoopGen::new(64).depth(4).seed(4).build();
        assert_ne!(a.flat(), c.flat(), "seed must matter");
    }
}
