//! Churn scenario generator: queries interleaved with membership events.
//!
//! The elasticity experiments need workloads the static generators
//! cannot produce: a query stream that keeps running **while the fleet
//! changes shape** — nodes joining under load, draining out, or dying
//! outright. This module generates such schedules deterministically, as
//! engine-independent data (like [`crate::FleetScenarioGen`]): each
//! [`ChurnEvent`] is either a burst of [`TenantQuery`]s or a membership
//! change, and the driver lowers the schedule onto a `FarviewFleet`
//! (add/drain/remove + rebalance + the `farView` verbs). The
//! integration replay lives in `tests/topology_props.rs`
//! (`churn_schedule_replays_byte_identically`), which asserts every
//! query of a drained-and-killed schedule stays byte-identical to a
//! single node.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TenantQuery;

/// One step of a churn schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A burst of queries issued against the current topology.
    Queries(Vec<TenantQuery>),
    /// Bring up one more node (the driver should rebalance afterwards).
    AddNode,
    /// Gracefully drain the `i`-th live node (index into the serving
    /// roster at the time the event fires), then rebalance away from it.
    DrainNode(usize),
    /// Abruptly kill the `i`-th live node — only survivable when the
    /// schedule's tables are replicated (`replicas ≥ 2`).
    KillNode(usize),
}

/// A deterministic schedule of queries interleaved with membership
/// churn.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnScenario {
    /// Nodes the fleet starts with.
    pub initial_nodes: usize,
    /// Replication factor the driver should load tables with (2 when
    /// the schedule contains a [`ChurnEvent::KillNode`], else 1).
    pub replicas: usize,
    /// Events in issue order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnScenario {
    /// Total queries across all bursts.
    pub fn query_count(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                ChurnEvent::Queries(qs) => qs.len(),
                _ => 0,
            })
            .sum()
    }

    /// Membership events (everything that bumps the epoch).
    pub fn membership_events(&self) -> usize {
        self.events
            .iter()
            .filter(|e| !matches!(e, ChurnEvent::Queries(_)))
            .count()
    }
}

/// Generator for [`ChurnScenario`]s: `phases` query bursts separated by
/// membership events — growth by default, with optional drain and kill
/// events mixed in.
#[derive(Debug, Clone)]
pub struct ChurnScenarioGen {
    initial_nodes: usize,
    phases: usize,
    queries_per_phase: usize,
    drains: bool,
    kills: bool,
    seed: u64,
}

impl ChurnScenarioGen {
    /// `phases` query bursts on a fleet starting at `initial_nodes`.
    pub fn new(initial_nodes: usize, phases: usize) -> Self {
        assert!(initial_nodes > 0, "need at least one starting node");
        assert!(phases > 0, "need at least one query phase");
        ChurnScenarioGen {
            initial_nodes,
            phases,
            queries_per_phase: 8,
            drains: false,
            kills: false,
            seed: 0xC4A1_E1A5_71C0,
        }
    }

    /// Queries per burst (default 8).
    pub fn queries_per_phase(mut self, n: usize) -> Self {
        assert!(n > 0, "bursts cannot be empty");
        self.queries_per_phase = n;
        self
    }

    /// Mix graceful drains into the membership events.
    pub fn with_drains(mut self) -> Self {
        self.drains = true;
        self
    }

    /// Mix abrupt kills into the membership events (forces `replicas`
    /// to 2 in the built scenario).
    pub fn with_kills(mut self) -> Self {
        self.kills = true;
        self
    }

    /// Fix the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the schedule. Between bursts the generator emits one
    /// membership event: mostly [`ChurnEvent::AddNode`], with drains /
    /// kills mixed in when enabled — never shrinking the serving roster
    /// below two nodes (a kill on the last node would lose data even
    /// with replication).
    pub fn build(&self) -> ChurnScenario {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();
        let mut nodes = self.initial_nodes;
        for phase in 0..self.phases {
            events.push(ChurnEvent::Queries(
                (0..self.queries_per_phase)
                    .map(|_| match rng.gen_range(0u32..4) {
                        0 => TenantQuery::Select {
                            selectivity: [0.25, 0.5, 0.75][rng.gen_range(0usize..3)],
                        },
                        1 => TenantQuery::Distinct,
                        2 => TenantQuery::GroupBySum,
                        _ => TenantQuery::GroupByAvg,
                    })
                    .collect(),
            ));
            if phase + 1 == self.phases {
                break;
            }
            let can_shrink = nodes > 2;
            let event = match rng.gen_range(0u32..4) {
                0 | 1 => ChurnEvent::AddNode,
                2 if self.drains && can_shrink => ChurnEvent::DrainNode(rng.gen_range(0..nodes)),
                3 if self.kills && can_shrink => ChurnEvent::KillNode(rng.gen_range(0..nodes)),
                _ => ChurnEvent::AddNode,
            };
            match event {
                ChurnEvent::AddNode => nodes += 1,
                ChurnEvent::DrainNode(_) | ChurnEvent::KillNode(_) => nodes -= 1,
                ChurnEvent::Queries(_) => unreachable!(),
            }
            events.push(event);
        }
        ChurnScenario {
            initial_nodes: self.initial_nodes,
            replicas: if self.kills { 2 } else { 1 },
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let a = ChurnScenarioGen::new(2, 5)
            .queries_per_phase(6)
            .seed(1)
            .build();
        let b = ChurnScenarioGen::new(2, 5)
            .queries_per_phase(6)
            .seed(1)
            .build();
        assert_eq!(a, b);
        assert_eq!(a.initial_nodes, 2);
        assert_eq!(a.replicas, 1);
        assert_eq!(a.query_count(), 30);
        assert_eq!(a.membership_events(), 4, "one event between bursts");
        let c = ChurnScenarioGen::new(2, 5)
            .queries_per_phase(6)
            .seed(2)
            .build();
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn growth_only_by_default() {
        let s = ChurnScenarioGen::new(2, 8).seed(3).build();
        assert!(s
            .events
            .iter()
            .all(|e| matches!(e, ChurnEvent::Queries(_) | ChurnEvent::AddNode)));
    }

    #[test]
    fn kills_force_replication_and_respect_the_floor() {
        let s = ChurnScenarioGen::new(2, 24)
            .with_drains()
            .with_kills()
            .seed(7)
            .build();
        assert_eq!(s.replicas, 2, "kill schedules must be survivable");
        // Replay the roster size: it never dips below two.
        let mut nodes = s.initial_nodes;
        for e in &s.events {
            match e {
                ChurnEvent::AddNode => nodes += 1,
                ChurnEvent::DrainNode(i) | ChurnEvent::KillNode(i) => {
                    assert!(*i < nodes, "event indexes the live roster");
                    nodes -= 1;
                }
                ChurnEvent::Queries(qs) => assert!(!qs.is_empty()),
            }
            assert!(nodes >= 2);
        }
    }
}
