//! Multi-tenant fleet scenario generator.
//!
//! The scale-out experiments need something the single-node figures do
//! not: *many tenants* with heterogeneous query mixes hitting a fleet at
//! once. This module generates that deterministically — each tenant gets
//! its own table (controlled group cardinality and selectivity) and a
//! seeded mix of selection / distinct / group-by queries.
//!
//! The generator describes queries as plain data ([`TenantQuery`]) so
//! this crate stays independent of the engine crates; `fv-bench` and the
//! examples lower a [`TenantQuery`] onto a `PipelineSpec`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fv_data::Table;

use crate::TableGen;

/// One query of a tenant's mix, as engine-independent data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantQuery {
    /// `SELECT * WHERE col1 < pivot` — the calibrated selectivity column.
    Select {
        /// Fraction of rows the predicate keeps.
        selectivity: f64,
    },
    /// `SELECT DISTINCT c0`.
    Distinct,
    /// `SELECT c0, SUM(c2) GROUP BY c0`.
    GroupBySum,
    /// `SELECT c0, AVG(c2) GROUP BY c0` — exercises the fleet's
    /// partial-aggregate rewrite (AVG → SUMF64 + COUNT).
    GroupByAvg,
}

/// One tenant: a table plus its query mix.
#[derive(Debug, Clone)]
pub struct TenantWorkload {
    /// Catalog-style tenant name (`"tenant0"`, ...).
    pub name: String,
    /// The tenant's base table: 8×8-byte columns; `c0` carries the
    /// group key, `c1` the calibrated selectivity values, `c2` the
    /// aggregation payload.
    pub table: Table,
    /// The column a hash-partitioned deployment should shard on (the
    /// group key, so grouped queries need no cross-shard combining).
    pub partition_key: usize,
    /// Queries, in issue order.
    pub queries: Vec<TenantQuery>,
}

/// Deterministic generator for a multi-tenant fleet scenario.
#[derive(Debug, Clone)]
pub struct FleetScenarioGen {
    tenants: usize,
    rows_per_tenant: usize,
    queries_per_tenant: usize,
    groups: u64,
    seed: u64,
}

impl FleetScenarioGen {
    /// `tenants` tenants with `rows_per_tenant`-row tables.
    pub fn new(tenants: usize, rows_per_tenant: usize) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        assert!(rows_per_tenant > 0, "tenant tables cannot be empty");
        FleetScenarioGen {
            tenants,
            rows_per_tenant,
            queries_per_tenant: 6,
            groups: 32,
            seed: 0xF1EE_7777,
        }
    }

    /// Queries per tenant (default 6).
    pub fn queries_per_tenant(mut self, n: usize) -> Self {
        assert!(n > 0, "tenants must issue at least one query");
        self.queries_per_tenant = n;
        self
    }

    /// Group cardinality of each tenant's key column (default 32).
    pub fn groups(mut self, n: u64) -> Self {
        assert!(n > 0, "need at least one group");
        self.groups = n;
        self
    }

    /// Fix the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build all tenants.
    pub fn build(&self) -> Vec<TenantWorkload> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.tenants)
            .map(|i| {
                let table = TableGen::new(8, self.rows_per_tenant)
                    .seed(self.seed ^ (0xA5A5 + i as u64))
                    .distinct_column(0, self.groups)
                    .selectivity_column(1, 0.5)
                    .sequential_column(2)
                    .build();
                let queries = (0..self.queries_per_tenant)
                    .map(|_| match rng.gen_range(0u32..4) {
                        0 => TenantQuery::Select {
                            selectivity: [0.25, 0.5, 0.75][rng.gen_range(0usize..3)],
                        },
                        1 => TenantQuery::Distinct,
                        2 => TenantQuery::GroupBySum,
                        _ => TenantQuery::GroupByAvg,
                    })
                    .collect();
                TenantWorkload {
                    name: format!("tenant{i}"),
                    table,
                    partition_key: 0,
                    queries,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let a = FleetScenarioGen::new(3, 1000).seed(9).build();
        let b = FleetScenarioGen::new(3, 1000).seed(9).build();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.table, y.table);
            assert_eq!(x.queries, y.queries);
            assert_eq!(x.table.row_count(), 1000);
            assert_eq!(x.queries.len(), 6);
        }
        let c = FleetScenarioGen::new(3, 1000).seed(10).build();
        assert_ne!(a[0].table, c[0].table, "seed must matter");
    }

    #[test]
    fn tenants_differ_and_mix_covers_kinds() {
        let tenants = FleetScenarioGen::new(4, 500)
            .queries_per_tenant(24)
            .seed(3)
            .build();
        assert_ne!(tenants[0].table, tenants[1].table);
        let all: Vec<TenantQuery> = tenants
            .iter()
            .flat_map(|t| t.queries.iter().copied())
            .collect();
        assert!(all.iter().any(|q| matches!(q, TenantQuery::Select { .. })));
        assert!(all.contains(&TenantQuery::Distinct));
        assert!(all.contains(&TenantQuery::GroupBySum));
        assert!(all.contains(&TenantQuery::GroupByAvg));
    }

    #[test]
    fn group_cardinality_is_respected() {
        let t = &FleetScenarioGen::new(1, 4000).groups(16).seed(1).build()[0];
        let mut seen = std::collections::HashSet::new();
        for r in t.table.rows() {
            seen.insert(r.value(0).as_u64());
        }
        assert!(seen.len() <= 16);
        assert!(seen.len() >= 12, "should hit most groups");
    }
}
