//! Heavy-tailed multi-tenant serving mix.
//!
//! [`ClosedLoopGen`](crate::ClosedLoopGen) models *one* well-behaved
//! closed-loop client. A serving front end faces the opposite: many
//! concurrent tenants whose demand is heavy-tailed — a few elephants
//! generate most of the offered load while a long tail of mice issue the
//! occasional query — and whose importance differs (priority classes
//! that an overloaded server sheds in order). This module generates that
//! population deterministically as engine-independent data; the serving
//! layer (`farview_core::serve`) and `fv-bench`'s `overload` experiment
//! lower each [`TenantSpec`] onto pipeline specs and a token-bucket
//! admission profile.
//!
//! Like every generator in this crate, the same seed builds the same
//! mix, so an overload run (and any fairness violation it trips) is
//! exactly replayable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TenantQuery;

/// Service class of a tenant, in shed order: under sustained overload
/// the serving layer rejects and sheds [`MixClass::Bronze`] work first,
/// then [`MixClass::Silver`], and only then touches
/// [`MixClass::Gold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MixClass {
    /// Highest priority: admitted up to the full queue watermark and
    /// never shed while lower-class work is queued.
    Gold,
    /// Default priority.
    Silver,
    /// Best-effort: first to be rejected and first to be shed.
    Bronze,
}

impl MixClass {
    /// Stable name for reports and figures.
    pub fn name(self) -> &'static str {
        match self {
            MixClass::Gold => "gold",
            MixClass::Silver => "silver",
            MixClass::Bronze => "bronze",
        }
    }

    /// Shed rank: higher ranks are shed first.
    pub fn shed_rank(self) -> u8 {
        match self {
            MixClass::Gold => 0,
            MixClass::Silver => 1,
            MixClass::Bronze => 2,
        }
    }
}

/// What one tenant's queries look like: the serving layer uses the
/// shape to bias the generated [`TenantQuery`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// Mostly wide selections (scan-heavy elephants).
    ScanHeavy,
    /// Mostly distinct / group-by (aggregation dashboards).
    AggHeavy,
    /// The uniform four-way mix of [`ClosedLoopGen`](crate::ClosedLoopGen).
    Mixed,
}

/// One tenant of the serving mix, as engine-independent data.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Dense tenant index (`0..tenants`).
    pub id: usize,
    /// Catalog-style name (`"tenant0"`, ...).
    pub name: String,
    /// Service class (admission & shed priority).
    pub class: MixClass,
    /// Contracted share weight: the service share the tenant is entitled
    /// to (weighted-DRR quantum, token-bucket rate). The generator draws
    /// weights Zipf-like so the mix is heavy-tailed.
    pub weight: u64,
    /// Arrival-rate weight: a tenant with demand 4 issues queries 4× as
    /// fast as a demand-1 tenant (its closed-loop think time is 4×
    /// shorter). Equal to `weight` for compliant tenants; over-demanders
    /// (see [`TenantMixGen::overdemand`]) ask for more than their
    /// contracted share and exist to be throttled.
    pub demand: u64,
    /// The shape its queries are biased toward.
    pub shape: QueryShape,
    /// The tenant's query stream, cycled by the closed loop.
    pub queries: Vec<TenantQuery>,
}

/// The generated population.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMix {
    /// Tenants in id order.
    pub tenants: Vec<TenantSpec>,
}

impl TenantMix {
    /// Total demand weight across tenants (the elephants dominate it).
    pub fn total_weight(&self) -> u64 {
        self.tenants.iter().map(|t| t.weight).sum()
    }

    /// Tenants of one class.
    pub fn class_count(&self, class: MixClass) -> usize {
        self.tenants.iter().filter(|t| t.class == class).count()
    }
}

/// Deterministic generator for a heavy-tailed [`TenantMix`].
///
/// The weight of tenant `i` follows a truncated Zipf(`skew`) law:
/// `weight_i = ceil(max_weight / (i+1)^skew)`, so tenant 0 is the
/// biggest elephant and the tail flattens to weight-1 mice. Classes are
/// drawn 20 % gold / 30 % silver / 50 % bronze; shapes round-robin so
/// every load point exercises every operator family.
#[derive(Debug, Clone)]
pub struct TenantMixGen {
    tenants: usize,
    queries_per_tenant: usize,
    skew: f64,
    max_weight: u64,
    overdemand: Option<(usize, u64)>,
    seed: u64,
}

impl TenantMixGen {
    /// A mix of `tenants` tenants.
    pub fn new(tenants: usize) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        TenantMixGen {
            tenants,
            queries_per_tenant: 8,
            skew: 1.2,
            max_weight: 8,
            overdemand: None,
            seed: 0x7E4A_47FA,
        }
    }

    /// Queries in each tenant's (cycled) stream (default 8).
    pub fn queries_per_tenant(mut self, n: usize) -> Self {
        assert!(n > 0, "tenants must issue at least one query");
        self.queries_per_tenant = n;
        self
    }

    /// Zipf skew of the weight distribution (default 1.2; 0 = uniform).
    pub fn skew(mut self, s: f64) -> Self {
        assert!(s >= 0.0, "skew cannot be negative");
        self.skew = s;
        self
    }

    /// Weight of the biggest elephant (default 8).
    pub fn max_weight(mut self, w: u64) -> Self {
        assert!(w > 0, "weights must be positive");
        self.max_weight = w;
        self
    }

    /// Make every `every`-th tenant an over-demander whose arrival rate
    /// is `factor`× its contracted weight (default: none — compliant
    /// tenants with `demand == weight`).
    pub fn overdemand(mut self, every: usize, factor: u64) -> Self {
        assert!(every > 0, "overdemand cadence must be positive");
        assert!(factor > 0, "overdemand factor must be positive");
        self.overdemand = Some((every, factor));
        self
    }

    /// Fix the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn draw_select(rng: &mut StdRng) -> TenantQuery {
        TenantQuery::Select {
            selectivity: [0.25, 0.5, 0.75][rng.gen_range(0usize..3)],
        }
    }

    fn draw_query(rng: &mut StdRng, shape: QueryShape) -> TenantQuery {
        let roll = rng.gen_range(0u32..4);
        match shape {
            QueryShape::ScanHeavy => match roll {
                0..=2 => Self::draw_select(rng),
                _ => TenantQuery::Distinct,
            },
            QueryShape::AggHeavy => match roll {
                0 => TenantQuery::Distinct,
                1 => TenantQuery::GroupBySum,
                2 => TenantQuery::GroupByAvg,
                _ => Self::draw_select(rng),
            },
            QueryShape::Mixed => match roll {
                0 => Self::draw_select(rng),
                1 => TenantQuery::Distinct,
                2 => TenantQuery::GroupBySum,
                _ => TenantQuery::GroupByAvg,
            },
        }
    }

    /// Build the mix.
    pub fn build(&self) -> TenantMix {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let tenants = (0..self.tenants)
            .map(|i| {
                let weight =
                    ((self.max_weight as f64) / ((i + 1) as f64).powf(self.skew)).ceil() as u64;
                let class = match rng.gen_range(0u32..10) {
                    0..=1 => MixClass::Gold,
                    2..=4 => MixClass::Silver,
                    _ => MixClass::Bronze,
                };
                let shape = match i % 3 {
                    0 => QueryShape::ScanHeavy,
                    1 => QueryShape::AggHeavy,
                    _ => QueryShape::Mixed,
                };
                let queries = (0..self.queries_per_tenant)
                    .map(|_| Self::draw_query(&mut rng, shape))
                    .collect();
                let weight = weight.max(1);
                let demand = match self.overdemand {
                    Some((every, factor)) if (i + 1) % every == 0 => weight * factor,
                    _ => weight,
                };
                TenantSpec {
                    id: i,
                    name: format!("tenant{i}"),
                    class,
                    weight,
                    demand,
                    shape,
                    queries,
                }
            })
            .collect();
        TenantMix { tenants }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_heavy_tailed() {
        let a = TenantMixGen::new(8).seed(5).build();
        let b = TenantMixGen::new(8).seed(5).build();
        assert_eq!(a, b, "same seed, same mix");
        let c = TenantMixGen::new(8).seed(6).build();
        assert_ne!(a, c, "seed must matter");

        // Zipf weights: tenant 0 is the elephant, the tail is mice.
        assert_eq!(a.tenants[0].weight, 8);
        assert!(a.tenants.last().unwrap().weight <= 2);
        assert!(
            a.tenants.windows(2).all(|w| w[0].weight >= w[1].weight),
            "weights decay along the tail"
        );
        // The head holds most of the demand.
        let head: u64 = a.tenants.iter().take(2).map(|t| t.weight).sum();
        assert!(
            head * 2 >= a.total_weight(),
            "top-2 tenants carry at least half the demand: {head} of {}",
            a.total_weight()
        );
    }

    #[test]
    fn classes_and_shapes_cover_the_space() {
        let mix = TenantMixGen::new(24).queries_per_tenant(12).seed(3).build();
        for class in [MixClass::Gold, MixClass::Silver, MixClass::Bronze] {
            assert!(mix.class_count(class) > 0, "missing class {class:?}");
        }
        let shapes: std::collections::HashSet<_> = mix.tenants.iter().map(|t| t.shape).collect();
        assert_eq!(shapes.len(), 3, "all three shapes present");
        // Scan-heavy tenants are mostly selects.
        for t in mix
            .tenants
            .iter()
            .filter(|t| t.shape == QueryShape::ScanHeavy)
        {
            let selects = t
                .queries
                .iter()
                .filter(|q| matches!(q, TenantQuery::Select { .. }))
                .count();
            assert!(
                selects * 2 >= t.queries.len(),
                "scan-heavy tenant {} is not scan-heavy: {selects}/{}",
                t.id,
                t.queries.len()
            );
        }
    }

    #[test]
    fn shed_order_is_gold_last() {
        assert!(MixClass::Gold.shed_rank() < MixClass::Silver.shed_rank());
        assert!(MixClass::Silver.shed_rank() < MixClass::Bronze.shed_rank());
        assert_eq!(MixClass::Gold.name(), "gold");
    }

    #[test]
    fn uniform_skew_flattens_weights() {
        let mix = TenantMixGen::new(6).skew(0.0).max_weight(4).seed(1).build();
        assert!(mix.tenants.iter().all(|t| t.weight == 4));
    }
}
