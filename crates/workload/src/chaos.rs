//! Chaos scenario generator: faults composed with membership churn.
//!
//! [`ChurnScenarioGen`](crate::ChurnScenarioGen) exercises the fleet's
//! membership machinery with a *clean* network — nodes join, drain and
//! die tidily between query bursts. This module generalizes it: a
//! [`ChaosScenario`] interleaves query bursts with membership events
//! **and** link degradations — packet loss, delay spikes, bandwidth
//! caps, full partitions, truncated doorbell batches — each described
//! by an engine-independent [`FaultSpec`] the driver lowers onto a
//! `FarviewFleet`'s fault hooks (`degrade_node` / `heal_node`).
//!
//! Like the churn generator, everything here is deterministic plain
//! data: the same seed builds the same schedule, and the fault seeds
//! embedded in the specs make the *link-level* behaviour replayable
//! too. The replay driver and the byte-identity oracle live in
//! `tests/chaos_props.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::churn::{ChurnEvent, ChurnScenario};
use crate::TenantQuery;

/// One link-degradation class, in engine-independent units (integer
/// percentages so specs stay `Eq`-comparable and hashable). The bench
/// crate lowers a spec onto an `fv_net::FaultPlan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSpec {
    /// Per-packet loss of `loss_pct` percent with a bounded retry
    /// budget: survivable loss costs latency only; exhaustion is a
    /// typed network error.
    Loss {
        /// Loss probability in percent, `0..100`.
        loss_pct: u8,
        /// Retry budget per packet.
        max_retries: u32,
    },
    /// Delay spikes: `spike_pct` percent of packets pick up an extra
    /// `spike_us` microseconds.
    DelaySpikes {
        /// Spike probability in percent, `0..=100`.
        spike_pct: u8,
        /// Spike size in microseconds.
        spike_us: u32,
    },
    /// Cap the link to `cap_pct` percent of its native peak rate.
    BandwidthCap {
        /// Remaining bandwidth in percent, `1..=100`.
        cap_pct: u8,
    },
    /// Full partition: nothing gets through; queries against the node
    /// fail typed (or fall back to a surviving replica).
    Partition,
    /// Doorbell batches truncated to their first `deliver` WQEs.
    TruncateDoorbell {
        /// WQEs the NIC fetches per batch.
        deliver: u32,
    },
}

impl FaultSpec {
    /// Can a query against an *unreplicated* shard on the degraded node
    /// still succeed under this fault? Partitions and truncations
    /// always fail typed; the latency-only classes succeed.
    pub fn survivable_unreplicated(&self) -> bool {
        match self {
            FaultSpec::Loss { .. }
            | FaultSpec::DelaySpikes { .. }
            | FaultSpec::BandwidthCap { .. } => true,
            FaultSpec::Partition | FaultSpec::TruncateDoorbell { .. } => false,
        }
    }

    /// Short stable name for reports and figures.
    pub fn class_name(&self) -> &'static str {
        match self {
            FaultSpec::Loss { .. } => "loss",
            FaultSpec::DelaySpikes { .. } => "delay_spike",
            FaultSpec::BandwidthCap { .. } => "bandwidth_cap",
            FaultSpec::Partition => "partition",
            FaultSpec::TruncateDoorbell { .. } => "truncated_doorbell",
        }
    }

    /// The default instance of each fault class, the matrix the
    /// generator composes from.
    pub fn all_classes() -> Vec<FaultSpec> {
        vec![
            FaultSpec::Loss {
                loss_pct: 20,
                max_retries: 32,
            },
            FaultSpec::DelaySpikes {
                spike_pct: 50,
                spike_us: 20,
            },
            FaultSpec::BandwidthCap { cap_pct: 25 },
            FaultSpec::Partition,
            FaultSpec::TruncateDoorbell { deliver: 1 },
        ]
    }
}

/// One step of a chaos schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// A burst of queries issued against the current topology.
    Queries(Vec<TenantQuery>),
    /// Bring up one more node (the driver should rebalance afterwards).
    AddNode,
    /// Gracefully drain the `i`-th live node, then rebalance off it.
    DrainNode(usize),
    /// Abruptly kill the `i`-th live node — only survivable when the
    /// schedule's tables are replicated.
    KillNode(usize),
    /// Degrade the `i`-th live node's link per the spec. The very next
    /// query burst runs against the degraded fleet.
    Degrade(usize, FaultSpec),
    /// Heal the `i`-th live node's link back to native behaviour.
    Heal(usize),
}

/// A deterministic schedule of query bursts, membership churn and link
/// degradations.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    /// Nodes the fleet starts with.
    pub initial_nodes: usize,
    /// Replication factor the driver should load tables with: 2
    /// whenever the schedule contains kills or non-survivable faults
    /// (partitions, truncations), else 1.
    pub replicas: usize,
    /// Events in issue order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosScenario {
    /// Total queries across all bursts.
    pub fn query_count(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                ChaosEvent::Queries(qs) => qs.len(),
                _ => 0,
            })
            .sum()
    }

    /// Membership events (everything that bumps the epoch).
    pub fn membership_events(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ChaosEvent::AddNode | ChaosEvent::DrainNode(_) | ChaosEvent::KillNode(_)
                )
            })
            .count()
    }

    /// Link-degradation events (degrades; heals are their bookends).
    pub fn fault_events(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Degrade(..)))
            .count()
    }
}

impl From<ChurnScenario> for ChaosScenario {
    /// Every churn schedule is a chaos schedule with zero faults.
    fn from(churn: ChurnScenario) -> Self {
        ChaosScenario {
            initial_nodes: churn.initial_nodes,
            replicas: churn.replicas,
            events: churn
                .events
                .into_iter()
                .map(|e| match e {
                    ChurnEvent::Queries(qs) => ChaosEvent::Queries(qs),
                    ChurnEvent::AddNode => ChaosEvent::AddNode,
                    ChurnEvent::DrainNode(i) => ChaosEvent::DrainNode(i),
                    ChurnEvent::KillNode(i) => ChaosEvent::KillNode(i),
                })
                .collect(),
        }
    }
}

/// Generator for [`ChaosScenario`]s: `phases` query bursts, each
/// optionally bracketed by a `Degrade`/`Heal` pair on a random node,
/// separated by optional membership events.
///
/// Faults are always healed before the next membership event fires, so
/// rebalances run against a clean network and the schedule replays
/// deterministically — the *mid-rebalance* fault scenarios are driven
/// explicitly by the property tests instead, where the assertion can
/// distinguish "rolled back typed" from "completed".
#[derive(Debug, Clone)]
pub struct ChaosScenarioGen {
    initial_nodes: usize,
    phases: usize,
    queries_per_phase: usize,
    membership: bool,
    faults: Vec<FaultSpec>,
    seed: u64,
}

impl ChaosScenarioGen {
    /// `phases` query bursts on a fleet starting at `initial_nodes`.
    pub fn new(initial_nodes: usize, phases: usize) -> Self {
        assert!(initial_nodes > 0, "need at least one starting node");
        assert!(phases > 0, "need at least one query phase");
        ChaosScenarioGen {
            initial_nodes,
            phases,
            queries_per_phase: 8,
            membership: false,
            faults: Vec::new(),
            seed: 0x00C4_A05C_4A05,
        }
    }

    /// Queries per burst (default 8).
    pub fn queries_per_phase(mut self, n: usize) -> Self {
        assert!(n > 0, "bursts cannot be empty");
        self.queries_per_phase = n;
        self
    }

    /// Mix membership events (adds, drains, kills) between bursts.
    pub fn with_membership(mut self) -> Self {
        self.membership = true;
        self
    }

    /// Add one fault class to the injection mix.
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// Inject every fault class ([`FaultSpec::all_classes`]).
    pub fn with_all_faults(mut self) -> Self {
        self.faults.extend(FaultSpec::all_classes());
        self
    }

    /// Fix the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the schedule. Each phase degrades one random node with one
    /// of the enabled fault classes (probability ½), runs its burst,
    /// heals the node, and — when membership is enabled — fires one
    /// membership event before the next phase, never shrinking the
    /// serving roster below two nodes.
    pub fn build(&self) -> ChaosScenario {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();
        let mut nodes = self.initial_nodes;
        let needs_replicas =
            self.membership || self.faults.iter().any(|f| !f.survivable_unreplicated());
        for phase in 0..self.phases {
            let degraded = if !self.faults.is_empty() && rng.gen_bool(0.5) {
                let victim = rng.gen_range(0..nodes);
                let spec = self.faults[rng.gen_range(0..self.faults.len())];
                // Reseed loss/spike draws per phase so two phases with
                // the same class still see different packets fault.
                events.push(ChaosEvent::Degrade(victim, spec));
                Some(victim)
            } else {
                None
            };
            events.push(ChaosEvent::Queries(
                (0..self.queries_per_phase)
                    .map(|_| match rng.gen_range(0u32..4) {
                        0 => TenantQuery::Select {
                            selectivity: [0.25, 0.5, 0.75][rng.gen_range(0usize..3)],
                        },
                        1 => TenantQuery::Distinct,
                        2 => TenantQuery::GroupBySum,
                        _ => TenantQuery::GroupByAvg,
                    })
                    .collect(),
            ));
            if let Some(victim) = degraded {
                events.push(ChaosEvent::Heal(victim));
            }
            if phase + 1 == self.phases || !self.membership {
                continue;
            }
            let can_shrink = nodes > 2;
            let event = match rng.gen_range(0u32..4) {
                2 if can_shrink => ChaosEvent::DrainNode(rng.gen_range(0..nodes)),
                3 if can_shrink => ChaosEvent::KillNode(rng.gen_range(0..nodes)),
                _ => ChaosEvent::AddNode,
            };
            match event {
                ChaosEvent::AddNode => nodes += 1,
                ChaosEvent::DrainNode(_) | ChaosEvent::KillNode(_) => nodes -= 1,
                _ => unreachable!(),
            }
            events.push(event);
        }
        ChaosScenario {
            initial_nodes: self.initial_nodes,
            replicas: if needs_replicas { 2 } else { 1 },
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChurnScenarioGen;

    #[test]
    fn deterministic_and_shaped() {
        let a = ChaosScenarioGen::new(3, 6)
            .queries_per_phase(4)
            .with_all_faults()
            .seed(11)
            .build();
        let b = ChaosScenarioGen::new(3, 6)
            .queries_per_phase(4)
            .with_all_faults()
            .seed(11)
            .build();
        assert_eq!(a, b);
        assert_eq!(a.query_count(), 24);
        assert!(a.fault_events() > 0, "six phases at p=1/2 degrade some");
        let c = ChaosScenarioGen::new(3, 6)
            .queries_per_phase(4)
            .with_all_faults()
            .seed(12)
            .build();
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn degrades_are_always_healed_and_indexed_in_roster() {
        let s = ChaosScenarioGen::new(2, 16)
            .with_all_faults()
            .with_membership()
            .seed(5)
            .build();
        assert_eq!(s.replicas, 2, "non-survivable faults force replication");
        let mut nodes = s.initial_nodes;
        let mut degraded: Option<usize> = None;
        for e in &s.events {
            match e {
                ChaosEvent::Degrade(i, _) => {
                    assert!(degraded.is_none(), "one degradation at a time");
                    assert!(*i < nodes, "victim indexes the live roster");
                    degraded = Some(*i);
                }
                ChaosEvent::Heal(i) => {
                    assert_eq!(degraded.take(), Some(*i), "heal bookends its degrade");
                }
                ChaosEvent::AddNode => {
                    assert!(degraded.is_none(), "membership only on a healed fleet");
                    nodes += 1;
                }
                ChaosEvent::DrainNode(i) | ChaosEvent::KillNode(i) => {
                    assert!(degraded.is_none(), "membership only on a healed fleet");
                    assert!(*i < nodes);
                    nodes -= 1;
                    assert!(nodes >= 2, "roster floor holds");
                }
                ChaosEvent::Queries(qs) => assert!(!qs.is_empty()),
            }
        }
        assert!(degraded.is_none(), "every degrade is healed by the end");
    }

    #[test]
    fn latency_only_faults_do_not_force_replication() {
        let s = ChaosScenarioGen::new(2, 4)
            .with_fault(FaultSpec::Loss {
                loss_pct: 10,
                max_retries: 16,
            })
            .with_fault(FaultSpec::DelaySpikes {
                spike_pct: 30,
                spike_us: 10,
            })
            .with_fault(FaultSpec::BandwidthCap { cap_pct: 50 })
            .seed(9)
            .build();
        assert_eq!(s.replicas, 1, "latency-only chaos runs unreplicated");
        assert!(s.membership_events() == 0);
    }

    #[test]
    fn churn_schedules_lift_into_chaos() {
        let churn = ChurnScenarioGen::new(2, 5)
            .with_drains()
            .with_kills()
            .seed(23)
            .build();
        let chaos: ChaosScenario = churn.clone().into();
        assert_eq!(chaos.initial_nodes, churn.initial_nodes);
        assert_eq!(chaos.replicas, churn.replicas);
        assert_eq!(chaos.query_count(), churn.query_count());
        assert_eq!(chaos.membership_events(), churn.membership_events());
        assert_eq!(chaos.fault_events(), 0, "churn carries no faults");
    }
}
