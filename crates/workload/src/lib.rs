//! # fv-workload — synthetic workload generators
//!
//! The paper's evaluation runs on synthetic tables: "our base tables
//! consist of 8 attributes, where each attribute is 8 bytes long" (§6.2),
//! with controlled selectivity (Figure 8), controlled distinct/group
//! cardinality (Figure 9), strings with a 50 % regex match rate
//! (Figure 10), and encrypted images (Figure 11). This crate generates
//! all of them, deterministically from a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod churn;
pub mod closed_loop;
pub mod fleet;
pub mod tenant_mix;

pub use chaos::{ChaosEvent, ChaosScenario, ChaosScenarioGen, FaultSpec};
pub use churn::{ChurnEvent, ChurnScenario, ChurnScenarioGen};
pub use closed_loop::{ClosedLoopGen, ClosedLoopPlan};
pub use fleet::{FleetScenarioGen, TenantQuery, TenantWorkload};
pub use tenant_mix::{MixClass, QueryShape, TenantMix, TenantMixGen, TenantSpec};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fv_data::{Column, ColumnType, Schema, Table, TableBuilder, Value};

/// Pivot constant for selectivity-calibrated columns: a predicate
/// `col < SELECTIVITY_PIVOT` selects exactly the calibrated fraction.
pub const SELECTIVITY_PIVOT: u64 = 1 << 32;

/// The canonical pattern used by the regex experiments. Matching rows
/// embed the literal `smartmem` somewhere in the string; the pattern
/// exercises classes and repetition like the paper's TPC-H Q16 example.
pub const REGEX_PATTERN: &str = "smartmem[0-9]+";

/// How one column's values are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColMode {
    /// Uniform over the full `u64` range below 2^63 (so i64 casts stay
    /// positive).
    Uniform,
    /// With probability `f`, a value `< SELECTIVITY_PIVOT`; otherwise
    /// `>= SELECTIVITY_PIVOT`. A `col < PIVOT` predicate then has
    /// selectivity `f`.
    Selectivity(f64),
    /// Uniform over `0..n` — the column has (up to) `n` distinct values
    /// / groups.
    Distinct(u64),
    /// The row index: every value distinct (Figure 9(a)'s "number of
    /// distinct elements is the same as the number of tuples").
    Sequential,
    /// A constant.
    Constant(u64),
    /// Uniform over `0..n`, but each drawn value repeats for `run`
    /// consecutive rows — the clustered foreign-key layout of a fact
    /// table physically ordered by a dimension key.
    Clustered {
        /// Number of distinct values.
        n: u64,
        /// Consecutive rows sharing one drawn value.
        run: u64,
    },
}

/// Generator for the paper's numeric row-format tables.
#[derive(Debug, Clone)]
pub struct TableGen {
    cols: usize,
    rows: usize,
    seed: u64,
    modes: Vec<ColMode>,
}

impl TableGen {
    /// `cols` unsigned 8-byte attributes × `rows` tuples, all uniform.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0, "need at least one column");
        TableGen {
            cols,
            rows,
            seed: 0xFA12_57E3,
            modes: vec![ColMode::Uniform; cols],
        }
    }

    /// The paper's default 8×8-byte schema sized to `table_bytes`.
    pub fn paper_default(table_bytes: u64) -> Self {
        assert_eq!(table_bytes % 64, 0, "table size must be whole 64 B rows");
        TableGen::new(8, (table_bytes / 64) as usize)
    }

    /// Fix the RNG seed (defaults to a constant; every build is
    /// deterministic either way).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set one column's mode.
    pub fn mode(mut self, col: usize, mode: ColMode) -> Self {
        self.modes[col] = mode;
        self
    }

    /// Calibrate `col` so `col < SELECTIVITY_PIVOT` selects `fraction`.
    pub fn selectivity_column(self, col: usize, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        self.mode(col, ColMode::Selectivity(fraction))
    }

    /// Give `col` exactly `n` distinct values (groups).
    pub fn distinct_column(self, col: usize, n: u64) -> Self {
        assert!(n > 0, "need at least one distinct value");
        self.mode(col, ColMode::Distinct(n))
    }

    /// Make `col` the row index (all values distinct).
    pub fn sequential_column(self, col: usize) -> Self {
        self.mode(col, ColMode::Sequential)
    }

    /// Give `col` `n` distinct values in runs of `run` consecutive rows
    /// (a fact table clustered by a dimension key).
    pub fn clustered_column(self, col: usize, n: u64, run: u64) -> Self {
        assert!(n > 0, "need at least one distinct value");
        assert!(run > 0, "runs must cover at least one row");
        self.mode(col, ColMode::Clustered { n, run })
    }

    /// Build the table.
    pub fn build(&self) -> Table {
        let schema = Schema::uniform_u64(self.cols);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = TableBuilder::with_capacity(schema, self.rows);
        // Clustered columns hold their drawn value across a run of rows.
        let mut held = vec![0u64; self.cols];
        for row in 0..self.rows {
            let values = self
                .modes
                .iter()
                .enumerate()
                .map(|(c, mode)| {
                    Value::U64(match *mode {
                        ColMode::Uniform => rng.gen_range(0..(1u64 << 63)),
                        ColMode::Selectivity(f) => {
                            if rng.gen_bool(f) {
                                rng.gen_range(0..SELECTIVITY_PIVOT)
                            } else {
                                rng.gen_range(SELECTIVITY_PIVOT..(1u64 << 63))
                            }
                        }
                        ColMode::Distinct(n) => rng.gen_range(0..n),
                        ColMode::Sequential => row as u64,
                        ColMode::Constant(c) => c,
                        ColMode::Clustered { n, run } => {
                            if (row as u64).is_multiple_of(run) {
                                held[c] = rng.gen_range(0..n);
                            }
                            held[c]
                        }
                    })
                })
                .collect();
            b.push_values(values);
        }
        b.build()
    }
}

/// Generator for the regex experiments' string tables: an 8-byte id
/// followed by one fixed-width string column.
#[derive(Debug, Clone)]
pub struct StringTableGen {
    rows: usize,
    string_bytes: usize,
    match_fraction: f64,
    seed: u64,
}

impl StringTableGen {
    /// `rows` rows with a string column of `string_bytes` (Figure 10
    /// sweeps 256 B – 16 kB).
    pub fn new(rows: usize, string_bytes: usize) -> Self {
        assert!(string_bytes >= 16, "strings must fit the match marker");
        StringTableGen {
            rows,
            string_bytes,
            match_fraction: 0.5,
            seed: 0x5712_AB42,
        }
    }

    /// Fraction of rows matching [`REGEX_PATTERN`] (paper: 50 %).
    pub fn match_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.match_fraction = f;
        self
    }

    /// Fix the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The schema: `(id: U64, s: Bytes(n))`.
    pub fn schema(&self) -> Schema {
        Schema::new(vec![
            Column {
                name: "id".into(),
                ty: ColumnType::U64,
            },
            Column {
                name: "s".into(),
                ty: ColumnType::Bytes(self.string_bytes),
            },
        ])
    }

    /// Build the table. Matching rows embed `smartmem<digits>` at a
    /// random offset; non-matching rows are random lowercase text that
    /// cannot contain the marker (the alphabet excludes `s`).
    pub fn build(&self) -> Table {
        let schema = self.schema();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = TableBuilder::with_capacity(schema.clone(), self.rows);
        // Alphabet without 's' so "smartmem" can never occur by chance.
        const ALPHA: &[u8] = b"abcdefghijklmnopqrtuvwxyz ";
        for row in 0..self.rows {
            let mut s: Vec<u8> = (0..self.string_bytes)
                .map(|_| ALPHA[rng.gen_range(0..ALPHA.len())])
                .collect();
            if rng.gen_bool(self.match_fraction) {
                let marker = format!("smartmem{}", rng.gen_range(0..1000u32));
                let pos = rng.gen_range(0..=self.string_bytes - marker.len());
                s[pos..pos + marker.len()].copy_from_slice(marker.as_bytes());
            }
            b.push_values(vec![Value::U64(row as u64), Value::Bytes(s)]);
        }
        b.build()
    }
}

/// Encrypt a table image with AES-128-CTR for the Figure 11 experiments
/// (data at rest in the disaggregated buffer pool, Cypherbase-style).
pub fn encrypt_table(table: &Table, key: &[u8; 16], iv: &[u8; 16]) -> Table {
    let mut image = table.bytes().to_vec();
    fv_crypto::ctr_apply_at(key, iv, 0, &mut image);
    Table::from_bytes(table.schema().clone(), image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_builds() {
        let a = TableGen::new(8, 100).seed(7).build();
        let b = TableGen::new(8, 100).seed(7).build();
        assert_eq!(a, b);
        let c = TableGen::new(8, 100).seed(8).build();
        assert_ne!(a, c);
    }

    #[test]
    fn selectivity_calibration_is_close() {
        let t = TableGen::new(2, 20_000)
            .seed(1)
            .selectivity_column(0, 0.25)
            .build();
        let selected = t
            .rows()
            .filter(|r| r.value(0).as_u64() < SELECTIVITY_PIVOT)
            .count();
        let frac = selected as f64 / 20_000.0;
        assert!((0.23..0.27).contains(&frac), "got {frac}");
    }

    #[test]
    fn distinct_cardinality_bounded() {
        let t = TableGen::new(1, 10_000).distinct_column(0, 64).build();
        let mut seen = std::collections::HashSet::new();
        for r in t.rows() {
            seen.insert(r.value(0).as_u64());
        }
        assert!(seen.len() <= 64);
        assert!(seen.len() > 48, "should hit most of the 64 groups");
    }

    #[test]
    fn sequential_is_all_distinct() {
        let t = TableGen::new(2, 1000).sequential_column(0).build();
        let mut seen = std::collections::HashSet::new();
        for r in t.rows() {
            assert!(seen.insert(r.value(0).as_u64()));
        }
    }

    #[test]
    fn string_match_rate_is_calibrated() {
        let g = StringTableGen::new(2000, 64).match_fraction(0.5).seed(3);
        let t = g.build();
        let re = fv_regex_check();
        let matches = t
            .rows()
            .filter(|r| {
                let s = r.col_raw(1);
                re.is_match(trim(s))
            })
            .count();
        let frac = matches as f64 / 2000.0;
        assert!((0.45..0.55).contains(&frac), "match rate {frac}");
    }

    fn trim(s: &[u8]) -> &[u8] {
        let end = s.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
        &s[..end]
    }

    fn fv_regex_check() -> fv_regex::Regex {
        fv_regex::Regex::compile(REGEX_PATTERN).unwrap()
    }

    #[test]
    fn paper_default_sizes() {
        let t = TableGen::paper_default(1024 * 1024).build();
        assert_eq!(t.byte_len(), 1024 * 1024);
        assert_eq!(t.row_count(), 16_384);
        assert_eq!(t.schema().row_bytes(), 64);
    }
}
