//! Property tests for the network stack.

use bytes::Bytes;
use proptest::prelude::*;

use fv_net::{packetize, CreditGate, EgressArbiter, Packet, Reassembly};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packetisation conserves bytes and respects the MTU.
    #[test]
    fn packetize_conserves_bytes(total in 0u64..10_000_000, mtu in 1u64..9000) {
        let sizes: Vec<u64> = packetize(total, mtu).collect();
        prop_assert_eq!(sizes.iter().sum::<u64>(), total);
        prop_assert!(sizes.iter().all(|&s| s > 0 && s <= mtu));
        // Only the last packet may be short.
        if sizes.len() > 1 {
            prop_assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == mtu));
        }
    }

    /// The credit gate never goes negative and never exceeds its budget,
    /// under any acquire/release interleaving.
    #[test]
    fn credit_gate_stays_bounded(
        budget in 1u32..64,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut gate = CreditGate::new(budget);
        let mut outstanding = 0u32;
        for acquire in ops {
            if acquire {
                if gate.try_acquire() {
                    outstanding += 1;
                }
            } else if outstanding > 0 {
                gate.release(1);
                outstanding -= 1;
            }
            prop_assert!(gate.available() <= budget);
            prop_assert_eq!(gate.available(), budget - outstanding);
        }
    }

    /// Reassembly accepts packets in reverse order too (worst-case
    /// out-of-order) and reconstructs the stream.
    #[test]
    fn reassembly_reverse_order(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..10), 1..10),
    ) {
        let mut rx = Reassembly::new();
        let n = chunks.len();
        for i in (0..n).rev() {
            rx.accept(0, i as u32, Bytes::from(chunks[i].clone()), i == n - 1)
                .unwrap();
        }
        prop_assert!(rx.is_complete());
        prop_assert_eq!(rx.into_payload(), chunks.concat());
    }

    /// The egress arbiter emits exactly the packets pushed, and any
    /// backlogged pair of flows alternates within a bounded window.
    #[test]
    fn arbiter_conserves_and_interleaves(
        a_count in 1usize..30,
        b_count in 1usize..30,
    ) {
        let mut arb = EgressArbiter::new(2);
        arb.bind(0, 100);
        arb.bind(1, 200);
        for s in 0..a_count {
            arb.push(Packet::data(100, s as u32, Bytes::from(vec![0u8; 512]), false)).unwrap();
        }
        for s in 0..b_count {
            arb.push(Packet::data(200, s as u32, Bytes::from(vec![0u8; 512]), false)).unwrap();
        }
        let mut out = Vec::new();
        while let Some(p) = arb.pop() {
            out.push(p.qp);
        }
        prop_assert_eq!(out.len(), a_count + b_count);
        prop_assert_eq!(out.iter().filter(|&&q| q == 100).count(), a_count);
        // While both flows are backlogged, no flow gets served 3x in a row
        // (equal 512 B packets, 1 MTU quantum).
        let both_until = 2 * a_count.min(b_count);
        for w in out[..both_until].windows(3) {
            prop_assert!(!(w[0] == w[1] && w[1] == w[2]), "starvation window: {:?}", out);
        }
    }
}
