//! Verbs and packets.

use bytes::Bytes;

/// Queue-pair identifier. "Farview identifies flows using such queue
//  pairs, information that is used internally as well as to route the
//  flow of requests and data through the system" (§4.3).
pub type QpId = u32;

/// RDMA verbs supported by the stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Verb {
    /// One-sided read of `len` bytes at `vaddr` in disaggregated memory.
    Read {
        /// Virtual address in the target's buffer pool.
        vaddr: u64,
        /// Bytes to read.
        len: u64,
    },
    /// One-sided write at `vaddr`; the payload rides in data packets.
    Write {
        /// Virtual address in the target's buffer pool.
        vaddr: u64,
        /// Bytes that will follow as data packets.
        len: u64,
    },
    /// The Farview verb: invoke the operator pipeline loaded in the
    /// region bound to this queue pair over `len` bytes at `vaddr`.
    /// "It includes a number of additional parameters containing the
    /// necessary signals to the disaggregated memory on how to access and
    /// process the data" (§4.3) — the `params` words, whose
    /// interpretation belongs to the operator pipeline (`fv-pipeline`).
    FarView {
        /// Virtual address of the base table.
        vaddr: u64,
        /// Bytes of base table to stream.
        len: u64,
        /// Operator-specific parameter words (the `uint64_t *params` of
        /// the paper's `farView()` call).
        params: Vec<u64>,
    },
}

impl Verb {
    /// Bytes of disaggregated memory this verb touches.
    pub fn span(&self) -> u64 {
        match self {
            Verb::Read { len, .. } | Verb::Write { len, .. } | Verb::FarView { len, .. } => *len,
        }
    }
}

/// What a packet carries.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketKind {
    /// A request (verb) from client to Farview.
    Request(Verb),
    /// Response data. `last` marks the final packet of a response — the
    /// sender emits it even for empty results so the client can complete
    /// ("allows us to create RDMA commands even when the final data size
    /// is not known a priori", §5.5).
    Data {
        /// True on the final packet of the response stream.
        last: bool,
    },
    /// Credit return for flow control.
    Credit(u32),
}

/// One network packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Owning flow.
    pub qp: QpId,
    /// Per-flow sequence number.
    pub seq: u32,
    /// Payload classification.
    pub kind: PacketKind,
    /// Payload bytes (empty for pure control packets).
    pub payload: Bytes,
}

impl Packet {
    /// Wire size: payload plus a fixed RoCE/UDP/Ethernet header estimate.
    pub fn wire_bytes(&self) -> u64 {
        const HEADER_BYTES: u64 = 58; // Eth + IP + UDP + BTH + iCRC
        HEADER_BYTES + self.payload.len() as u64
    }

    /// Convenience constructor for data packets.
    pub fn data(qp: QpId, seq: u32, payload: Bytes, last: bool) -> Packet {
        Packet {
            qp,
            seq,
            kind: PacketKind::Data { last },
            payload,
        }
    }

    /// Convenience constructor for request packets.
    pub fn request(qp: QpId, seq: u32, verb: Verb) -> Packet {
        Packet {
            qp,
            seq,
            kind: PacketKind::Request(verb),
            payload: Bytes::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_span() {
        assert_eq!(Verb::Read { vaddr: 0, len: 10 }.span(), 10);
        assert_eq!(
            Verb::FarView {
                vaddr: 0,
                len: 99,
                params: vec![1, 2]
            }
            .span(),
            99
        );
    }

    #[test]
    fn wire_bytes_includes_header() {
        let p = Packet::data(1, 0, Bytes::from_static(&[0u8; 1024]), false);
        assert_eq!(p.wire_bytes(), 1024 + 58);
        let req = Packet::request(1, 0, Verb::Read { vaddr: 0, len: 1 });
        assert_eq!(req.wire_bytes(), 58);
    }
}
