//! # fv-net — the Farview network stack
//!
//! "Farview's network stack implements a reliable RDMA connection
//! protocol, building on an existing open source stack that implements
//! regular one-sided RDMA read and write verbs. We extend the original
//! stack with support for out-of-order execution at the granularity of
//! single network packets. The out-of-order execution, along with
//! credit-based flow control and packet based processing, allows Farview
//! to provide the fair-sharing" (§4.3).
//!
//! This crate implements that protocol machinery functionally, plus the
//! calibrated timing models for the 100 Gbps wire and the commercial-NIC
//! (PCIe) baseline:
//!
//! * [`Verb`] / [`Packet`] — one-sided RDMA read/write plus the extra
//!   Farview verb carrying operator parameters ("a Farview one-sided verb
//!   based on an RDMA write to control the operators", §4.3).
//! * [`QueuePair`] — per-connection state: sequence numbers, the credit
//!   gate, and out-of-order [`Reassembly`] of packetised responses.
//! * [`EgressArbiter`] — DRR fair sharing of the wire across queue pairs.
//! * [`LinkTiming`] — bandwidth/latency servers for the Farview wire and
//!   the RNIC/PCIe path of the baselines.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

mod arbiter;
mod fault;
mod link;
mod packet;
mod qp;

pub use arbiter::EgressArbiter;
pub use fault::{FaultInjector, FaultPlan};
pub use link::{LinkTiming, NicKind};
pub use packet::{Packet, PacketKind, QpId, Verb};
pub use qp::{CreditGate, DoorbellBatch, NetError, QueuePair, Reassembly};

/// Split `total_bytes` into MTU-sized packet lengths (last one short).
pub fn packetize(total_bytes: u64, mtu: u64) -> impl Iterator<Item = u64> {
    assert!(mtu > 0, "mtu must be positive");
    let full = total_bytes / mtu;
    let tail = total_bytes % mtu;
    (0..full)
        .map(move |_| mtu)
        .chain(std::iter::once(tail).filter(|&t| t > 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packetize_shapes() {
        let v: Vec<u64> = packetize(3000, 1024).collect();
        assert_eq!(v, vec![1024, 1024, 952]);
        let v: Vec<u64> = packetize(2048, 1024).collect();
        assert_eq!(v, vec![1024, 1024]);
        let v: Vec<u64> = packetize(0, 1024).collect();
        assert!(v.is_empty());
        let v: Vec<u64> = packetize(1, 1024).collect();
        assert_eq!(v, vec![1]);
    }
}
