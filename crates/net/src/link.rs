//! Wire and NIC timing models.
//!
//! Two NIC personalities, calibrated in `fv_sim::calib`:
//!
//! * [`NicKind::FarviewFpga`] — the smart NIC: higher fixed request
//!   processing (250 MHz stack) but cheap per-packet multi-packet
//!   processing and direct on-board DRAM (no PCIe hop).
//! * [`NicKind::CommercialRnic`] — the ConnectX-5 baseline: fast ASIC
//!   request handling, but every request crosses PCIe to host DRAM and
//!   per-packet descriptor/page handling is costlier; throughput is
//!   capped by the PCIe bus (~11 GBps, §6.2).

use fv_sim::calib::{
    FV_NET_PEAK, FV_PER_PACKET, FV_REQ_OCCUPANCY, FV_REQ_PROC, RNIC_PCIE_LATENCY, RNIC_PCIE_PEAK,
    RNIC_PER_PACKET, RNIC_REQ_OCCUPANCY, RNIC_REQ_PROC, WIRE_ONE_WAY,
};
use fv_sim::{BandwidthServer, SimDuration, SimTime};

/// Which NIC serves the remote side of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicKind {
    /// Farview's FPGA smart NIC with on-board DRAM.
    FarviewFpga,
    /// A commercial RDMA NIC in front of host DRAM over PCIe.
    CommercialRnic,
}

impl NicKind {
    /// Fixed request-processing latency at the remote NIC.
    pub fn request_processing(self) -> SimDuration {
        match self {
            NicKind::FarviewFpga => FV_REQ_PROC,
            NicKind::CommercialRnic => RNIC_REQ_PROC + RNIC_PCIE_LATENCY,
        }
    }

    /// Per-packet egress processing.
    pub fn per_packet(self) -> SimDuration {
        match self {
            NicKind::FarviewFpga => FV_PER_PACKET,
            NicKind::CommercialRnic => RNIC_PER_PACKET,
        }
    }

    /// Serial per-request occupancy under pipelined load (throughput
    /// experiments).
    pub fn request_occupancy(self) -> SimDuration {
        match self {
            NicKind::FarviewFpga => FV_REQ_OCCUPANCY,
            NicKind::CommercialRnic => RNIC_REQ_OCCUPANCY,
        }
    }

    /// Per-packet engine occupancy under pipelined load (much smaller
    /// than the additive latency of [`NicKind::per_packet`]).
    pub fn per_packet_pipelined(self) -> SimDuration {
        match self {
            NicKind::FarviewFpga => fv_sim::calib::FV_PER_PACKET_PIPELINED,
            NicKind::CommercialRnic => fv_sim::calib::RNIC_PER_PACKET_PIPELINED,
        }
    }

    /// Sustained data-path throughput ceiling.
    pub fn peak_rate(self) -> f64 {
        match self {
            NicKind::FarviewFpga => FV_NET_PEAK,
            NicKind::CommercialRnic => RNIC_PCIE_PEAK,
        }
    }
}

/// The serialized wire (egress direction) of one link, plus propagation.
#[derive(Debug, Clone)]
pub struct LinkTiming {
    kind: NicKind,
    wire: BandwidthServer,
    one_way: SimDuration,
}

impl LinkTiming {
    /// A link served by the given NIC kind.
    pub fn new(kind: NicKind) -> Self {
        LinkTiming {
            kind,
            wire: BandwidthServer::new(kind.peak_rate(), kind.per_packet()),
            one_way: WIRE_ONE_WAY,
        }
    }

    /// The NIC personality.
    pub fn kind(&self) -> NicKind {
        self.kind
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.one_way
    }

    /// Admit one packet of `wire_bytes` for transmission at `now`;
    /// returns the instant its last bit arrives at the far end
    /// (serialization queueing + propagation).
    pub fn transmit(&mut self, now: SimTime, wire_bytes: u64) -> SimTime {
        self.wire.admit(now, wire_bytes) + self.one_way
    }

    /// Bytes pushed through the wire so far.
    pub fn bytes_transmitted(&self) -> u64 {
        self.wire.bytes_served()
    }

    /// Reset for a fresh episode.
    pub fn reset(&mut self) {
        self.wire.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_sim::calib::PACKET_BYTES;

    #[test]
    fn fpga_vs_rnic_fixed_costs() {
        // The RNIC must have lower per-request fixed cost at the NIC
        // itself... no: including PCIe it is *higher*; what it wins on is
        // occupancy under load and nothing else at large transfers.
        assert!(
            NicKind::CommercialRnic.request_processing()
                > NicKind::FarviewFpga.request_processing(),
            "PCIe hop must dominate the RNIC's request fixed cost"
        );
        assert!(NicKind::CommercialRnic.per_packet() > NicKind::FarviewFpga.per_packet());
        assert!(
            NicKind::CommercialRnic.request_occupancy() < NicKind::FarviewFpga.request_occupancy()
        );
        assert!(NicKind::FarviewFpga.peak_rate() > NicKind::CommercialRnic.peak_rate());
    }

    #[test]
    fn transmit_serializes_back_to_back_packets() {
        let mut link = LinkTiming::new(NicKind::FarviewFpga);
        let t0 = SimTime::ZERO;
        let a = link.transmit(t0, PACKET_BYTES);
        let b = link.transmit(t0, PACKET_BYTES);
        assert!(b > a, "second packet must queue behind the first");
        let gap = b - a;
        // The gap is exactly one packet's service time (overhead + ser.).
        let service = NicKind::FarviewFpga.per_packet()
            + SimDuration::for_bytes(PACKET_BYTES, NicKind::FarviewFpga.peak_rate());
        assert_eq!(gap.as_nanos(), service.as_nanos());
    }

    #[test]
    fn reset_clears_horizon() {
        let mut link = LinkTiming::new(NicKind::CommercialRnic);
        link.transmit(SimTime::ZERO, 4096);
        assert!(link.bytes_transmitted() > 0);
        link.reset();
        assert_eq!(link.bytes_transmitted(), 0);
    }
}
