//! Wire and NIC timing models.
//!
//! Two NIC personalities, calibrated in `fv_sim::calib`:
//!
//! * [`NicKind::FarviewFpga`] — the smart NIC: higher fixed request
//!   processing (250 MHz stack) but cheap per-packet multi-packet
//!   processing and direct on-board DRAM (no PCIe hop).
//! * [`NicKind::CommercialRnic`] — the ConnectX-5 baseline: fast ASIC
//!   request handling, but every request crosses PCIe to host DRAM and
//!   per-packet descriptor/page handling is costlier; throughput is
//!   capped by the PCIe bus (~11 GBps, §6.2).

use fv_sim::calib::{
    FV_NET_PEAK, FV_PER_PACKET, FV_REQ_OCCUPANCY, FV_REQ_PROC, RNIC_PCIE_LATENCY, RNIC_PCIE_PEAK,
    RNIC_PER_PACKET, RNIC_REQ_OCCUPANCY, RNIC_REQ_PROC, WIRE_ONE_WAY,
};
use fv_sim::{BandwidthServer, SimDuration, SimTime};

use crate::fault::{FaultInjector, FaultPlan};
use crate::packet::QpId;
use crate::qp::NetError;

/// Which NIC serves the remote side of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicKind {
    /// Farview's FPGA smart NIC with on-board DRAM.
    FarviewFpga,
    /// A commercial RDMA NIC in front of host DRAM over PCIe.
    CommercialRnic,
}

impl NicKind {
    /// Fixed request-processing latency at the remote NIC.
    pub fn request_processing(self) -> SimDuration {
        match self {
            NicKind::FarviewFpga => FV_REQ_PROC,
            NicKind::CommercialRnic => RNIC_REQ_PROC + RNIC_PCIE_LATENCY,
        }
    }

    /// Per-packet egress processing.
    pub fn per_packet(self) -> SimDuration {
        match self {
            NicKind::FarviewFpga => FV_PER_PACKET,
            NicKind::CommercialRnic => RNIC_PER_PACKET,
        }
    }

    /// Serial per-request occupancy under pipelined load (throughput
    /// experiments).
    pub fn request_occupancy(self) -> SimDuration {
        match self {
            NicKind::FarviewFpga => FV_REQ_OCCUPANCY,
            NicKind::CommercialRnic => RNIC_REQ_OCCUPANCY,
        }
    }

    /// Per-packet engine occupancy under pipelined load (much smaller
    /// than the additive latency of [`NicKind::per_packet`]).
    pub fn per_packet_pipelined(self) -> SimDuration {
        match self {
            NicKind::FarviewFpga => fv_sim::calib::FV_PER_PACKET_PIPELINED,
            NicKind::CommercialRnic => fv_sim::calib::RNIC_PER_PACKET_PIPELINED,
        }
    }

    /// Sustained data-path throughput ceiling.
    pub fn peak_rate(self) -> f64 {
        match self {
            NicKind::FarviewFpga => FV_NET_PEAK,
            NicKind::CommercialRnic => RNIC_PCIE_PEAK,
        }
    }
}

/// The serialized wire (egress direction) of one link, plus propagation
/// and an optional deterministic fault injector.
#[derive(Debug, Clone)]
pub struct LinkTiming {
    kind: NicKind,
    wire: BandwidthServer,
    one_way: SimDuration,
    faults: Option<FaultInjector>,
}

impl LinkTiming {
    /// A healthy link served by the given NIC kind.
    pub fn new(kind: NicKind) -> Self {
        LinkTiming {
            kind,
            wire: BandwidthServer::new(kind.peak_rate(), kind.per_packet()),
            one_way: WIRE_ONE_WAY,
            faults: None,
        }
    }

    /// A link degraded per `plan`. A benign plan builds a healthy link
    /// with no injector at all, so the fault path costs nothing when
    /// chaos is off.
    pub fn with_faults(kind: NicKind, plan: FaultPlan) -> Self {
        let mut link = LinkTiming::new(kind);
        if !plan.is_benign() {
            link.faults = Some(FaultInjector::new(kind, plan));
        }
        link
    }

    /// The NIC personality.
    pub fn kind(&self) -> NicKind {
        self.kind
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.one_way
    }

    /// The fault injector, when this link is degraded.
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Admit one packet of `wire_bytes` for transmission at `now`;
    /// returns the instant its last bit arrives at the far end
    /// (serialization queueing + propagation).
    ///
    /// # Panics
    /// Panics if the link is degraded and the injector faults this
    /// packet — callers on a path that can see injected faults must use
    /// [`LinkTiming::try_transmit`] instead.
    pub fn transmit(&mut self, now: SimTime, wire_bytes: u64) -> SimTime {
        self.try_transmit(0, now, wire_bytes)
            .expect("fault injected on a link driven through the infallible transmit path")
    }

    /// Fault-aware transmission for `qp`'s packet of `wire_bytes`.
    ///
    /// On a healthy link this is exactly [`LinkTiming::transmit`]. On a
    /// degraded link the injector decides, deterministically from the
    /// plan's seed:
    ///
    /// * **partition** — fail immediately with
    ///   [`NetError::LinkPartitioned`]; nothing occupies the wire.
    /// * **loss** — each lost attempt still occupies the wire (the bits
    ///   were sent) and adds exponential backoff before the retry; the
    ///   retry budget running out is [`NetError::RetriesExhausted`].
    /// * **bandwidth cap** — arrival is delayed to when a capped-rate
    ///   server would have drained the packet.
    /// * **delay spike** — a flat extra delay on unlucky packets.
    pub fn try_transmit(
        &mut self,
        qp: QpId,
        now: SimTime,
        wire_bytes: u64,
    ) -> Result<SimTime, NetError> {
        let Some(inj) = &mut self.faults else {
            return Ok(self.wire.admit(now, wire_bytes) + self.one_way);
        };
        if inj.plan().partitioned {
            return Err(NetError::LinkPartitioned { qp });
        }
        // Retry loop: every attempt (lost or not) serializes onto the
        // wire; lost attempts push the next try out by the backoff.
        let max_retries = inj.plan().max_retries;
        let mut attempt_start = now;
        let mut attempts = 0u32;
        let sent_at = loop {
            attempts += 1;
            let drained = self.wire.admit(attempt_start, wire_bytes);
            if !inj.lost() {
                break drained;
            }
            if attempts > max_retries {
                inj.record_exhausted();
                return Err(NetError::RetriesExhausted { qp, attempts });
            }
            attempt_start = drained + inj.backoff(attempts);
        };
        let mut arrival = sent_at + self.one_way;
        if let Some(cap) = inj.cap_mut() {
            // The capped spine drains the packet no earlier than the
            // degraded rate allows.
            arrival = arrival.max(cap.admit(now, wire_bytes) + self.one_way);
        }
        if inj.spiked() {
            arrival += inj.plan().delay_spike;
        }
        Ok(arrival)
    }

    /// Bytes pushed through the wire so far.
    pub fn bytes_transmitted(&self) -> u64 {
        self.wire.bytes_served()
    }

    /// Reset for a fresh episode; a degraded link replays its fault
    /// plan from the seed.
    pub fn reset(&mut self) {
        self.wire.reset();
        if let Some(inj) = &mut self.faults {
            inj.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_sim::calib::PACKET_BYTES;

    #[test]
    fn fpga_vs_rnic_fixed_costs() {
        // The RNIC must have lower per-request fixed cost at the NIC
        // itself... no: including PCIe it is *higher*; what it wins on is
        // occupancy under load and nothing else at large transfers.
        assert!(
            NicKind::CommercialRnic.request_processing()
                > NicKind::FarviewFpga.request_processing(),
            "PCIe hop must dominate the RNIC's request fixed cost"
        );
        assert!(NicKind::CommercialRnic.per_packet() > NicKind::FarviewFpga.per_packet());
        assert!(
            NicKind::CommercialRnic.request_occupancy() < NicKind::FarviewFpga.request_occupancy()
        );
        assert!(NicKind::FarviewFpga.peak_rate() > NicKind::CommercialRnic.peak_rate());
    }

    #[test]
    fn transmit_serializes_back_to_back_packets() {
        let mut link = LinkTiming::new(NicKind::FarviewFpga);
        let t0 = SimTime::ZERO;
        let a = link.transmit(t0, PACKET_BYTES);
        let b = link.transmit(t0, PACKET_BYTES);
        assert!(b > a, "second packet must queue behind the first");
        let gap = b - a;
        // The gap is exactly one packet's service time (overhead + ser.).
        let service = NicKind::FarviewFpga.per_packet()
            + SimDuration::for_bytes(PACKET_BYTES, NicKind::FarviewFpga.peak_rate());
        assert_eq!(gap.as_nanos(), service.as_nanos());
    }

    #[test]
    fn reset_clears_horizon() {
        let mut link = LinkTiming::new(NicKind::CommercialRnic);
        link.transmit(SimTime::ZERO, 4096);
        assert!(link.bytes_transmitted() > 0);
        link.reset();
        assert_eq!(link.bytes_transmitted(), 0);
    }

    #[test]
    fn benign_plan_is_a_healthy_link() {
        let mut faulted = LinkTiming::with_faults(NicKind::FarviewFpga, FaultPlan::default());
        assert!(
            faulted.faults().is_none(),
            "benign plan installs no injector"
        );
        let mut healthy = LinkTiming::new(NicKind::FarviewFpga);
        for i in 0..8 {
            let t = SimTime::from_nanos(i * 100);
            assert_eq!(
                faulted.try_transmit(0, t, PACKET_BYTES).unwrap(),
                healthy.transmit(t, PACKET_BYTES)
            );
        }
    }

    #[test]
    fn partition_is_an_immediate_typed_error() {
        let mut link =
            LinkTiming::with_faults(NicKind::FarviewFpga, FaultPlan::default().partitioned());
        assert_eq!(
            link.try_transmit(3, SimTime::ZERO, PACKET_BYTES),
            Err(NetError::LinkPartitioned { qp: 3 })
        );
        assert_eq!(link.bytes_transmitted(), 0, "nothing occupies the wire");
    }

    #[test]
    fn loss_costs_latency_never_bytes() {
        let plan = FaultPlan::default().with_seed(7).with_loss_retries(0.4, 16);
        let mut lossy = LinkTiming::with_faults(NicKind::FarviewFpga, plan);
        let mut clean = LinkTiming::new(NicKind::FarviewFpga);
        let mut slower = false;
        for i in 0..32 {
            let t = SimTime::from_nanos(i * 10_000);
            let a = lossy.try_transmit(0, t, PACKET_BYTES).unwrap();
            let b = clean.transmit(t, PACKET_BYTES);
            assert!(a >= b, "retries can only delay arrival");
            slower |= a > b;
        }
        assert!(slower, "40% loss over 32 packets must retry at least once");
        assert!(lossy.faults().unwrap().retries() > 0);
    }

    #[test]
    fn retry_budget_exhaustion_is_typed() {
        // High loss and a tiny budget: some packet must exhaust retries.
        let plan = FaultPlan::default().with_seed(11).with_loss_retries(0.9, 1);
        let mut link = LinkTiming::with_faults(NicKind::FarviewFpga, plan);
        let mut saw_exhaustion = false;
        for i in 0..64 {
            match link.try_transmit(5, SimTime::from_nanos(i * 1000), PACKET_BYTES) {
                Ok(_) => {}
                Err(NetError::RetriesExhausted { qp: 5, attempts }) => {
                    assert_eq!(attempts, 2, "1 original + 1 retry");
                    saw_exhaustion = true;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_exhaustion);
        assert!(link.faults().unwrap().exhausted() > 0);
    }

    #[test]
    fn bandwidth_cap_slows_back_to_back_packets() {
        let plan = FaultPlan::default().with_bandwidth_cap(0.1);
        let mut capped = LinkTiming::with_faults(NicKind::FarviewFpga, plan);
        let mut clean = LinkTiming::new(NicKind::FarviewFpga);
        let mut last_capped = SimTime::ZERO;
        let mut last_clean = SimTime::ZERO;
        for _ in 0..16 {
            last_capped = capped.try_transmit(0, SimTime::ZERO, PACKET_BYTES).unwrap();
            last_clean = clean.transmit(SimTime::ZERO, PACKET_BYTES);
        }
        assert!(
            last_capped > last_clean,
            "a 10% cap must drain a 16-packet burst later than the native rate"
        );
    }

    #[test]
    fn delay_spikes_replay_deterministically() {
        let plan = FaultPlan::default()
            .with_seed(3)
            .with_delay_spikes(0.5, SimDuration::from_micros(10));
        let mut a = LinkTiming::with_faults(NicKind::FarviewFpga, plan.clone());
        let arrivals: Vec<SimTime> = (0..16)
            .map(|i| {
                a.try_transmit(0, SimTime::from_nanos(i * 50_000), PACKET_BYTES)
                    .unwrap()
            })
            .collect();
        a.reset();
        let replay: Vec<SimTime> = (0..16)
            .map(|i| {
                a.try_transmit(0, SimTime::from_nanos(i * 50_000), PACKET_BYTES)
                    .unwrap()
            })
            .collect();
        assert_eq!(
            arrivals, replay,
            "reset replays the identical spike pattern"
        );
        assert!(
            a.faults().unwrap().spikes() > 0,
            "p=0.5 over 16 packets hits"
        );
    }
}
