//! Deterministic per-link fault injection.
//!
//! Real disaggregated-memory deployments do not get the clean network
//! the paper's evaluation testbed had: links drop packets, queues build
//! delay spikes, oversubscribed spines cap bandwidth, and switches
//! partition racks outright. This module models those degradations as a
//! seed-driven [`FaultPlan`] attached to a [`LinkTiming`](crate::LinkTiming),
//! so every chaos run is exactly replayable: the same seed produces the
//! same loss pattern, the same spikes, the same retry schedule.
//!
//! The injector deliberately lives *below* the protocol layer. Lost
//! packets are retried with bounded exponential backoff (so loss only
//! ever costs latency, never bytes — until the retry budget is
//! exhausted, which surfaces as a typed
//! [`NetError::RetriesExhausted`](crate::NetError)); partitions surface
//! as [`NetError::LinkPartitioned`](crate::NetError) on the first
//! transmission attempt. Nothing in this module panics on degraded
//! input: the core invariant of the chaos harness is *byte-identical
//! results or a clean typed error, never a wrong answer, never a
//! panic*.

use fv_sim::calib::WIRE_ONE_WAY;
use fv_sim::{BandwidthServer, SimDuration};

use crate::link::NicKind;

/// Base unit of the retry backoff schedule: one round trip on the wire.
const RETRY_BACKOFF: SimDuration = SimDuration::from_nanos(2 * WIRE_ONE_WAY.as_nanos());

/// How many times the backoff doubles before it saturates.
const BACKOFF_DOUBLINGS: u32 = 6;

/// A replayable description of how one link misbehaves.
///
/// The default plan is benign (no faults); builders switch individual
/// degradation classes on. All randomness is derived from `seed`, so a
/// plan is a complete, replayable description of a degraded link — the
/// same plan against the same traffic produces the same timing and the
/// same typed errors on every run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's deterministic RNG.
    pub seed: u64,
    /// Per-packet loss probability in `[0, 1)`. Lost packets are
    /// retried with bounded exponential backoff.
    pub loss: f64,
    /// Retry budget per packet before the link gives up with a typed
    /// [`NetError::RetriesExhausted`](crate::NetError).
    pub max_retries: u32,
    /// Probability that a packet picks up an extra queueing delay spike.
    pub delay_spike_prob: f64,
    /// Size of one delay spike.
    pub delay_spike: SimDuration,
    /// Cap the link to this fraction of its native peak rate, in
    /// `(0, 1]`. `None` leaves the native rate.
    pub bandwidth_cap: Option<f64>,
    /// A full partition: every transmission fails immediately with
    /// [`NetError::LinkPartitioned`](crate::NetError).
    pub partitioned: bool,
    /// Deliver only the first `n` WQEs of every doorbell batch; later
    /// entries surface [`NetError::TruncatedBatch`](crate::NetError).
    pub truncate_doorbell: Option<u32>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            loss: 0.0,
            max_retries: 7,
            delay_spike_prob: 0.0,
            delay_spike: SimDuration::ZERO,
            bandwidth_cap: None,
            partitioned: false,
            truncate_doorbell: None,
        }
    }
}

impl FaultPlan {
    /// The benign plan: no faults, native link behaviour.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fix the RNG seed (all fault draws derive from it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Drop each packet with probability `loss`, retrying under the
    /// default retry budget.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Drop each packet with probability `loss`, giving up after
    /// `max_retries` retries.
    pub fn with_loss_retries(mut self, loss: f64, max_retries: u32) -> Self {
        self.loss = loss;
        self.max_retries = max_retries;
        self
    }

    /// Add a delay spike of `spike` to each packet with probability `p`.
    pub fn with_delay_spikes(mut self, p: f64, spike: SimDuration) -> Self {
        self.delay_spike_prob = p;
        self.delay_spike = spike;
        self
    }

    /// Cap the link at `fraction` of its native peak rate.
    pub fn with_bandwidth_cap(mut self, fraction: f64) -> Self {
        self.bandwidth_cap = Some(fraction);
        self
    }

    /// Partition the link: every transmission fails with a typed error.
    pub fn partitioned(mut self) -> Self {
        self.partitioned = true;
        self
    }

    /// Truncate every doorbell batch to its first `deliver` WQEs.
    pub fn with_doorbell_truncation(mut self, deliver: u32) -> Self {
        self.truncate_doorbell = Some(deliver);
        self
    }

    /// True when the plan injects nothing — the link behaves natively.
    pub fn is_benign(&self) -> bool {
        self.loss == 0.0
            && self.delay_spike_prob == 0.0
            && self.bandwidth_cap.is_none()
            && !self.partitioned
            && self.truncate_doorbell.is_none()
    }

    /// Check the plan's parameters.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities or a non-positive bandwidth
    /// cap — a misconfigured plan, not a runtime fault.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.loss),
            "loss probability must be in [0, 1): {}",
            self.loss
        );
        assert!(
            (0.0..=1.0).contains(&self.delay_spike_prob),
            "delay spike probability must be in [0, 1]: {}",
            self.delay_spike_prob
        );
        if let Some(f) = self.bandwidth_cap {
            assert!(
                f > 0.0 && f <= 1.0,
                "bandwidth cap must be a fraction in (0, 1]: {f}"
            );
        }
        if let Some(n) = self.truncate_doorbell {
            assert!(n > 0, "doorbell truncation must deliver at least one WQE");
        }
    }
}

/// The live per-link fault state: a [`FaultPlan`] plus its RNG and the
/// optional capped-bandwidth server overlay.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: u64,
    cap: Option<BandwidthServer>,
    retries: u64,
    spikes: u64,
    exhausted: u64,
}

impl FaultInjector {
    /// An injector for `plan` on a link of the given NIC kind (the kind
    /// fixes the native peak rate the bandwidth cap is relative to).
    pub fn new(kind: NicKind, plan: FaultPlan) -> Self {
        plan.validate();
        let cap = plan
            .bandwidth_cap
            .map(|f| BandwidthServer::new(kind.peak_rate() * f, kind.per_packet()));
        FaultInjector {
            rng: plan.seed,
            plan,
            cap,
            retries: 0,
            spikes: 0,
            exhausted: 0,
        }
    }

    /// The plan this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// SplitMix64 step: deterministic, seed-replayable, dependency-free.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One Bernoulli draw with probability `p`.
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, the standard u64 -> f64 construction.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Does the next transmission attempt get lost?
    pub(crate) fn lost(&mut self) -> bool {
        let lost = self.chance(self.plan.loss);
        if lost {
            self.retries += 1;
        }
        lost
    }

    /// Does this packet pick up a delay spike?
    pub(crate) fn spiked(&mut self) -> bool {
        let s =
            self.chance(self.plan.delay_spike_prob) && self.plan.delay_spike > SimDuration::ZERO;
        if s {
            self.spikes += 1;
        }
        s
    }

    /// The backoff before retry attempt `attempt` (1-based): one RTT,
    /// doubling per attempt, saturating after a few doublings.
    pub(crate) fn backoff(&self, attempt: u32) -> SimDuration {
        RETRY_BACKOFF * u64::from(1u32 << attempt.min(BACKOFF_DOUBLINGS))
    }

    /// The capped-rate overlay server, when a bandwidth cap is set.
    pub(crate) fn cap_mut(&mut self) -> Option<&mut BandwidthServer> {
        self.cap.as_mut()
    }

    /// Record one retry budget exhaustion.
    pub(crate) fn record_exhausted(&mut self) {
        self.exhausted += 1;
    }

    /// Retries performed so far (lost attempts).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Delay spikes injected so far.
    pub fn spikes(&self) -> u64 {
        self.spikes
    }

    /// Packets whose retry budget ran out.
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }

    /// Reset to the plan's seed so a fresh episode replays identically.
    pub fn reset(&mut self) {
        self.rng = self.plan.seed;
        self.retries = 0;
        self.spikes = 0;
        self.exhausted = 0;
        if let Some(cap) = &mut self.cap {
            cap.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_benign() {
        let p = FaultPlan::default();
        assert!(p.is_benign());
        p.validate();
    }

    #[test]
    fn builders_mark_plans_degraded() {
        assert!(!FaultPlan::default().with_loss(0.1).is_benign());
        assert!(!FaultPlan::default()
            .with_delay_spikes(0.5, SimDuration::from_micros(3))
            .is_benign());
        assert!(!FaultPlan::default().with_bandwidth_cap(0.25).is_benign());
        assert!(!FaultPlan::default().partitioned().is_benign());
        assert!(!FaultPlan::default().with_doorbell_truncation(2).is_benign());
        // A plan that only reseeds is still benign.
        assert!(FaultPlan::default().with_seed(99).is_benign());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn certain_loss_is_rejected() {
        FaultPlan::default().with_loss(1.0).validate();
    }

    #[test]
    fn draws_replay_from_the_seed() {
        let plan = FaultPlan::default().with_seed(42).with_loss(0.3);
        let mut a = FaultInjector::new(NicKind::FarviewFpga, plan.clone());
        let first: Vec<bool> = (0..64).map(|_| a.lost()).collect();
        a.reset();
        let replay: Vec<bool> = (0..64).map(|_| a.lost()).collect();
        assert_eq!(first, replay, "reset must replay the identical pattern");
        let mut b = FaultInjector::new(NicKind::FarviewFpga, plan);
        let fresh: Vec<bool> = (0..64).map(|_| b.lost()).collect();
        assert_eq!(first, fresh, "same plan, same draws");
        assert!(first.iter().any(|&l| l), "30% loss over 64 draws hits");
        assert!(!first.iter().all(|&l| l), "but not every draw");
    }

    #[test]
    fn backoff_doubles_then_saturates() {
        let inj = FaultInjector::new(NicKind::FarviewFpga, FaultPlan::default());
        assert!(inj.backoff(2) == inj.backoff(1) * 2);
        assert_eq!(
            inj.backoff(BACKOFF_DOUBLINGS),
            inj.backoff(BACKOFF_DOUBLINGS + 5),
            "backoff saturates"
        );
    }
}
