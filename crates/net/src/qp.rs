//! Queue-pair state: credits, sequencing, out-of-order reassembly.

use std::collections::HashMap;
use std::fmt;

use bytes::Bytes;

use crate::packet::QpId;

/// Network-stack errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Send attempted with no credits left — the caller must wait for
    /// credit returns, never drop.
    NoCredits {
        /// The starved queue pair.
        qp: QpId,
    },
    /// The same sequence number arrived twice with different contents.
    DuplicateSeq {
        /// The queue pair.
        qp: QpId,
        /// The duplicated sequence number.
        seq: u32,
    },
    /// A packet arrived after the `last`-marked packet's sequence.
    BeyondLast {
        /// The queue pair.
        qp: QpId,
        /// The offending sequence number.
        seq: u32,
    },
    /// A packet was routed to the egress arbiter for a queue pair that is
    /// not bound to any flow slot (disconnected mid-flight, or a stale
    /// stream id after a slot was reused).
    UnboundQp {
        /// The unbound queue pair / stream id.
        qp: QpId,
    },
    /// The link is fully partitioned: nothing gets through, transmission
    /// fails immediately instead of hanging.
    LinkPartitioned {
        /// The queue pair whose transmission hit the partition.
        qp: QpId,
    },
    /// A lossy link dropped the same packet more times than the retry
    /// budget allows.
    RetriesExhausted {
        /// The queue pair.
        qp: QpId,
        /// Transmission attempts made (1 original + retries).
        attempts: u32,
    },
    /// A doorbell batch was truncated in flight: the NIC fetched fewer
    /// WQEs than the client posted.
    TruncatedBatch {
        /// The queue pair whose WQE was never fetched.
        qp: QpId,
        /// WQEs the client posted.
        posted: u32,
        /// WQEs the NIC actually fetched.
        fetched: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoCredits { qp } => write!(f, "qp {qp}: out of credits"),
            NetError::DuplicateSeq { qp, seq } => write!(f, "qp {qp}: duplicate seq {seq}"),
            NetError::BeyondLast { qp, seq } => {
                write!(f, "qp {qp}: packet seq {seq} beyond final packet")
            }
            NetError::UnboundQp { qp } => {
                write!(f, "qp {qp} is not bound to any egress slot")
            }
            NetError::LinkPartitioned { qp } => {
                write!(f, "qp {qp}: link partitioned, nothing gets through")
            }
            NetError::RetriesExhausted { qp, attempts } => {
                write!(f, "qp {qp}: packet lost after {attempts} attempts")
            }
            NetError::TruncatedBatch {
                qp,
                posted,
                fetched,
            } => {
                write!(
                    f,
                    "qp {qp}: doorbell batch truncated ({fetched} of {posted} WQEs fetched)"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Credit-based flow control ("credit-based flow control and packet
/// based processing", §4.3): a sender may have at most `budget` packets
/// outstanding; the receiver returns credits as it drains.
#[derive(Debug, Clone)]
pub struct CreditGate {
    budget: u32,
    available: u32,
}

impl CreditGate {
    /// A gate with the given packet budget.
    pub fn new(budget: u32) -> Self {
        assert!(budget > 0, "credit budget must be positive");
        CreditGate {
            budget,
            available: budget,
        }
    }

    /// Try to consume one credit; `false` means the sender must stall.
    pub fn try_acquire(&mut self) -> bool {
        if self.available > 0 {
            self.available -= 1;
            true
        } else {
            false
        }
    }

    /// Return `n` credits.
    ///
    /// # Panics
    /// Panics if more credits are returned than were ever taken — a
    /// protocol bug, not a runtime condition.
    pub fn release(&mut self, n: u32) {
        assert!(
            self.available + n <= self.budget,
            "credit overflow: {} + {n} > budget {}",
            self.available,
            self.budget
        );
        self.available += n;
    }

    /// Credits currently available.
    pub fn available(&self) -> u32 {
        self.available
    }

    /// The configured budget.
    pub fn budget(&self) -> u32 {
        self.budget
    }
}

/// A multi-WQE submission: `n` verbs posted to one queue pair's send
/// queue and issued with a single doorbell.
///
/// The one-sided batching discipline of FaRM-style RDMA systems: the
/// client writes all work-queue entries first and rings the doorbell
/// once, so only the first verb pays the full posting cost
/// ([`fv_sim::calib::CLIENT_POST`]); each later WQE adds just the NIC's
/// per-WQE fetch ([`fv_sim::calib::DOORBELL_WQE`]). This is what keeps a
/// queue depth of N requests in flight per queue pair cheap enough for
/// the smart NIC to overlap verbs with operator execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoorbellBatch {
    wqes: u32,
    fetched: u32,
}

impl DoorbellBatch {
    /// A batch of `wqes` work-queue entries behind one doorbell.
    ///
    /// # Panics
    /// Panics on an empty batch — ringing a doorbell with no WQEs posted
    /// is a client bug.
    pub fn new(wqes: u32) -> Self {
        assert!(wqes > 0, "a doorbell batch needs at least one WQE");
        DoorbellBatch {
            wqes,
            fetched: wqes,
        }
    }

    /// A batch the NIC truncated in flight: `wqes` posted, but only the
    /// first `fetched` actually left the send queue. WQEs past the
    /// truncation point surface [`NetError::TruncatedBatch`] from
    /// [`DoorbellBatch::try_issue_offset`] instead of an issue time.
    ///
    /// # Panics
    /// Panics if `fetched` is zero or exceeds `wqes`.
    pub fn truncated(wqes: u32, fetched: u32) -> Self {
        assert!(wqes > 0, "a doorbell batch needs at least one WQE");
        assert!(
            fetched > 0 && fetched <= wqes,
            "truncation must fetch between 1 and {wqes} WQEs, got {fetched}"
        );
        DoorbellBatch { wqes, fetched }
    }

    /// Number of WQEs in the batch (the queue depth).
    pub fn wqes(&self) -> u32 {
        self.wqes
    }

    /// WQEs the NIC actually fetched (equals [`DoorbellBatch::wqes`]
    /// unless the batch was truncated).
    pub fn fetched(&self) -> u32 {
        self.fetched
    }

    /// Client-side instant (relative to the post) at which WQE `i`
    /// leaves the send queue: one doorbell, then the NIC streams the
    /// entries.
    ///
    /// # Panics
    /// Panics if `i` is outside the batch.
    pub fn issue_offset(&self, i: u32) -> fv_sim::SimDuration {
        assert!(i < self.wqes, "WQE {i} outside batch of {}", self.wqes);
        fv_sim::calib::CLIENT_POST + fv_sim::calib::DOORBELL_WQE * u64::from(i)
    }

    /// Like [`DoorbellBatch::issue_offset`], but WQEs past a truncation
    /// point return a typed [`NetError::TruncatedBatch`] instead of an
    /// issue time — the fault-aware entry point for degraded links.
    ///
    /// # Panics
    /// Still panics if `i` is outside the posted batch: asking for a
    /// WQE that was never posted is a client bug, not a network fault.
    pub fn try_issue_offset(&self, qp: QpId, i: u32) -> Result<fv_sim::SimDuration, NetError> {
        assert!(i < self.wqes, "WQE {i} outside batch of {}", self.wqes);
        if i >= self.fetched {
            return Err(NetError::TruncatedBatch {
                qp,
                posted: self.wqes,
                fetched: self.fetched,
            });
        }
        Ok(self.issue_offset(i))
    }

    /// Posting time saved versus ringing one doorbell per verb.
    pub fn amortized_saving(&self) -> fv_sim::SimDuration {
        let per_verb = fv_sim::calib::CLIENT_POST * u64::from(self.wqes);
        let batched = self.issue_offset(self.wqes - 1);
        per_verb.saturating_sub(batched)
    }
}

/// Out-of-order packet reassembly for one response stream.
///
/// The stack executes "out-of-order ... at the granularity of single
/// network packets" (§4.3); the client side must therefore reassemble by
/// sequence number. Completion is known once the `last`-marked packet
/// *and* every sequence before it have arrived.
#[derive(Debug, Clone, Default)]
pub struct Reassembly {
    /// Out-of-order packets waiting for their predecessors.
    pending: HashMap<u32, Bytes>,
    /// In-order assembled payload.
    assembled: Vec<u8>,
    /// Next sequence number to consume.
    next_seq: u32,
    /// Sequence of the `last` packet, once seen.
    last_seq: Option<u32>,
    /// Count of packets received (duplicates rejected).
    received: u64,
}

impl Reassembly {
    /// Fresh reassembly state.
    pub fn new() -> Self {
        Reassembly::default()
    }

    /// Accept one data packet. Returns `Ok(true)` when the stream just
    /// became complete.
    pub fn accept(
        &mut self,
        qp: QpId,
        seq: u32,
        payload: Bytes,
        last: bool,
    ) -> Result<bool, NetError> {
        if let Some(ls) = self.last_seq {
            if seq > ls {
                return Err(NetError::BeyondLast { qp, seq });
            }
        }
        if seq < self.next_seq || self.pending.contains_key(&seq) {
            return Err(NetError::DuplicateSeq { qp, seq });
        }
        if last {
            if let Some(prev) = self.last_seq {
                if prev != seq {
                    return Err(NetError::DuplicateSeq { qp, seq });
                }
            }
            self.last_seq = Some(seq);
        }
        self.received += 1;
        self.pending.insert(seq, payload);
        // Drain the in-order prefix.
        while let Some(chunk) = self.pending.remove(&self.next_seq) {
            self.assembled.extend_from_slice(&chunk);
            self.next_seq += 1;
        }
        Ok(self.is_complete())
    }

    /// True once every packet up to and including the last has arrived.
    pub fn is_complete(&self) -> bool {
        match self.last_seq {
            Some(ls) => self.next_seq > ls,
            None => false,
        }
    }

    /// The assembled in-order payload so far.
    pub fn assembled(&self) -> &[u8] {
        &self.assembled
    }

    /// Take the assembled payload (ending the stream).
    ///
    /// # Panics
    /// Panics if the stream is not complete — taking a partial result is
    /// always a protocol bug.
    pub fn into_payload(self) -> Vec<u8> {
        assert!(self.is_complete(), "reassembly not complete");
        self.assembled
    }

    /// Packets accepted so far.
    pub fn packets_received(&self) -> u64 {
        self.received
    }
}

/// Per-connection state: tx sequencing, credits, and rx reassembly.
///
/// "Upon connection establishment, each network connection flow and its
/// corresponding queue pair gets associated with one of the virtual
/// dynamic regions" (§4.3) — that association lives in `farview-core`;
/// this struct is the protocol-state half.
#[derive(Debug, Clone)]
pub struct QueuePair {
    id: QpId,
    next_tx_seq: u32,
    credits: CreditGate,
    rx: Reassembly,
}

impl QueuePair {
    /// A queue pair with the given credit budget.
    pub fn new(id: QpId, credit_budget: u32) -> Self {
        QueuePair {
            id,
            next_tx_seq: 0,
            credits: CreditGate::new(credit_budget),
            rx: Reassembly::new(),
        }
    }

    /// This pair's id.
    pub fn id(&self) -> QpId {
        self.id
    }

    /// Allocate the next tx sequence number.
    pub fn next_seq(&mut self) -> u32 {
        let s = self.next_tx_seq;
        self.next_tx_seq += 1;
        s
    }

    /// The credit gate.
    pub fn credits_mut(&mut self) -> &mut CreditGate {
        &mut self.credits
    }

    /// The rx reassembly state.
    pub fn rx_mut(&mut self) -> &mut Reassembly {
        &mut self.rx
    }

    /// Immutable rx view.
    pub fn rx(&self) -> &Reassembly {
        &self.rx
    }

    /// Reset the rx stream for a new request/response exchange.
    pub fn begin_response(&mut self) {
        self.rx = Reassembly::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_stall_and_release() {
        let mut g = CreditGate::new(2);
        assert!(g.try_acquire());
        assert!(g.try_acquire());
        assert!(!g.try_acquire(), "third acquire must stall");
        g.release(1);
        assert!(g.try_acquire());
        assert_eq!(g.available(), 0);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_is_a_bug() {
        let mut g = CreditGate::new(1);
        g.release(1);
    }

    #[test]
    fn in_order_reassembly() {
        let mut r = Reassembly::new();
        assert!(!r.accept(0, 0, Bytes::from_static(b"aa"), false).unwrap());
        assert!(!r.accept(0, 1, Bytes::from_static(b"bb"), false).unwrap());
        assert!(r.accept(0, 2, Bytes::from_static(b"cc"), true).unwrap());
        assert_eq!(r.into_payload(), b"aabbcc");
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut r = Reassembly::new();
        // Last packet arrives first — completion must wait for the rest.
        assert!(!r.accept(0, 2, Bytes::from_static(b"cc"), true).unwrap());
        assert!(!r.accept(0, 0, Bytes::from_static(b"aa"), false).unwrap());
        assert!(!r.is_complete());
        assert!(r.accept(0, 1, Bytes::from_static(b"bb"), false).unwrap());
        assert_eq!(r.assembled(), b"aabbcc");
        assert_eq!(r.packets_received(), 3);
    }

    #[test]
    fn empty_result_completes_on_lone_fin() {
        let mut r = Reassembly::new();
        assert!(r.accept(0, 0, Bytes::new(), true).unwrap());
        assert_eq!(r.into_payload(), b"");
    }

    #[test]
    fn duplicates_and_stragglers_rejected() {
        let mut r = Reassembly::new();
        r.accept(0, 0, Bytes::from_static(b"a"), false).unwrap();
        assert!(matches!(
            r.accept(0, 0, Bytes::from_static(b"a"), false),
            Err(NetError::DuplicateSeq { seq: 0, .. })
        ));
        r.accept(0, 1, Bytes::from_static(b"b"), true).unwrap();
        assert!(matches!(
            r.accept(0, 5, Bytes::from_static(b"x"), false),
            Err(NetError::BeyondLast { seq: 5, .. })
        ));
    }

    #[test]
    fn doorbell_batch_amortizes_posts() {
        let b = DoorbellBatch::new(8);
        assert_eq!(b.wqes(), 8);
        // First WQE pays the full doorbell; later ones only the fetch.
        assert_eq!(b.issue_offset(0), fv_sim::calib::CLIENT_POST);
        let step = b.issue_offset(1) - b.issue_offset(0);
        assert_eq!(step, fv_sim::calib::DOORBELL_WQE);
        // Batching 8 verbs must be strictly cheaper than 8 doorbells.
        assert!(b.amortized_saving() > fv_sim::SimDuration::ZERO);
        // Depth 1 degenerates to the plain post: nothing saved.
        assert_eq!(
            DoorbellBatch::new(1).amortized_saving(),
            fv_sim::SimDuration::ZERO
        );
    }

    #[test]
    fn truncated_batch_surfaces_typed_error() {
        let b = DoorbellBatch::truncated(4, 2);
        assert_eq!(b.wqes(), 4);
        assert_eq!(b.fetched(), 2);
        // Fetched WQEs issue normally, at the untruncated offsets.
        assert_eq!(b.try_issue_offset(9, 0).unwrap(), b.issue_offset(0));
        assert_eq!(b.try_issue_offset(9, 1).unwrap(), b.issue_offset(1));
        // Posted-but-unfetched WQEs are a typed error, not a panic.
        assert_eq!(
            b.try_issue_offset(9, 2),
            Err(NetError::TruncatedBatch {
                qp: 9,
                posted: 4,
                fetched: 2
            })
        );
        // An untruncated batch never errors.
        let full = DoorbellBatch::new(3);
        for i in 0..3 {
            assert!(full.try_issue_offset(1, i).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "outside batch")]
    fn try_issue_offset_still_rejects_unposted_wqes() {
        let _ = DoorbellBatch::truncated(4, 2).try_issue_offset(0, 4);
    }

    #[test]
    fn qp_sequencing_and_reset() {
        let mut qp = QueuePair::new(7, 4);
        assert_eq!(qp.id(), 7);
        assert_eq!(qp.next_seq(), 0);
        assert_eq!(qp.next_seq(), 1);
        qp.rx_mut()
            .accept(7, 0, Bytes::from_static(b"x"), true)
            .unwrap();
        assert!(qp.rx().is_complete());
        qp.begin_response();
        assert!(!qp.rx().is_complete());
    }
}
