//! Fair-share egress arbitration across queue pairs.
//!
//! "The queue pairs contain unique identifiers which are used to
//! differentiate the flows and to provide isolation through a series of
//! hardware arbiters" (§4.3). The egress arbiter is deficit round robin
//! with a one-MTU quantum: byte-fair regardless of per-flow packet sizes,
//! and immune to a single greedy flow monopolizing the wire.

use fv_sim::calib::PACKET_BYTES;
use fv_sim::DrrScheduler;

use crate::packet::Packet;

/// DRR arbiter over a fixed set of flows (one per dynamic region /
/// queue pair slot).
#[derive(Debug, Clone)]
pub struct EgressArbiter {
    drr: DrrScheduler<Packet>,
    /// Map from QP id to DRR flow slot.
    slots: Vec<Option<u32>>,
}

impl EgressArbiter {
    /// An arbiter with `flows` slots (the number of dynamic regions).
    pub fn new(flows: usize) -> Self {
        EgressArbiter {
            // Quantum must cover the largest wire size (payload+header).
            drr: DrrScheduler::new(flows, PACKET_BYTES + 64),
            slots: vec![None; flows],
        }
    }

    /// Bind a queue pair to a flow slot (at connection establishment).
    ///
    /// # Panics
    /// Panics if the slot is already bound to a different QP.
    pub fn bind(&mut self, slot: usize, qp: u32) {
        match self.slots[slot] {
            None => self.slots[slot] = Some(qp),
            Some(existing) => assert_eq!(existing, qp, "slot {slot} already bound to {existing}"),
        }
    }

    /// Release a slot (at disconnect).
    pub fn unbind(&mut self, slot: usize) {
        self.slots[slot] = None;
    }

    /// The slot a QP is bound to, if any.
    pub fn slot_of(&self, qp: u32) -> Option<usize> {
        self.slots.iter().position(|s| *s == Some(qp))
    }

    /// Enqueue a packet for transmission.
    ///
    /// # Panics
    /// Panics if the packet's QP is not bound — routing unbound flows is
    /// a wiring bug.
    pub fn push(&mut self, pkt: Packet) {
        let slot = self
            .slot_of(pkt.qp)
            .unwrap_or_else(|| panic!("qp {} not bound to any egress slot", pkt.qp));
        self.drr.push(slot, pkt.wire_bytes(), pkt);
    }

    /// Next packet in fair order.
    pub fn pop(&mut self) -> Option<Packet> {
        self.drr.pop().map(|(_, p)| p)
    }

    /// Queued packet count.
    pub fn len(&self) -> usize {
        self.drr.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.drr.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt(qp: u32, seq: u32) -> Packet {
        Packet::data(qp, seq, Bytes::from(vec![0u8; 1024]), false)
    }

    #[test]
    fn fair_interleave_between_two_flows() {
        let mut arb = EgressArbiter::new(2);
        arb.bind(0, 10);
        arb.bind(1, 20);
        for s in 0..8 {
            arb.push(pkt(10, s));
        }
        for s in 0..8 {
            arb.push(pkt(20, s));
        }
        let order: Vec<u32> = std::iter::from_fn(|| arb.pop()).map(|p| p.qp).collect();
        assert_eq!(order.len(), 16);
        // Every adjacent pair must contain both flows (strict alternation
        // for equal-size packets).
        for w in order.chunks(2) {
            assert_ne!(w[0], w[1], "flows must interleave: {order:?}");
        }
    }

    #[test]
    fn greedy_flow_cannot_starve_late_joiner() {
        let mut arb = EgressArbiter::new(2);
        arb.bind(0, 1);
        arb.bind(1, 2);
        for s in 0..100 {
            arb.push(pkt(1, s));
        }
        // Flow 2 joins with a single packet; it must be served within the
        // next two pops.
        arb.push(pkt(2, 0));
        let first = arb.pop().unwrap();
        let second = arb.pop().unwrap();
        assert!(
            first.qp == 2 || second.qp == 2,
            "late flow starved: {} then {}",
            first.qp,
            second.qp
        );
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_qp_is_a_bug() {
        let mut arb = EgressArbiter::new(1);
        arb.push(pkt(99, 0));
    }

    #[test]
    fn bind_unbind_cycle() {
        let mut arb = EgressArbiter::new(1);
        arb.bind(0, 5);
        assert_eq!(arb.slot_of(5), Some(0));
        arb.unbind(0);
        assert_eq!(arb.slot_of(5), None);
        arb.bind(0, 6);
        assert_eq!(arb.slot_of(6), Some(0));
    }
}
