//! Fair-share egress arbitration across queue pairs.
//!
//! "The queue pairs contain unique identifiers which are used to
//! differentiate the flows and to provide isolation through a series of
//! hardware arbiters" (§4.3). The egress arbiter is deficit round robin
//! with a one-MTU quantum: byte-fair regardless of per-flow packet sizes,
//! and immune to a single greedy flow monopolizing the wire.
//!
//! A flow slot corresponds to one dynamic region. A doorbell-batched
//! submission keeps many queries of *one* queue pair in flight at once;
//! their response streams carry distinct stream ids but share the
//! region's flow slot, so arbitration stays byte-fair **across**
//! regions/batches while packets of one batch interleave freely inside
//! their shared flow.

use fv_sim::calib::PACKET_BYTES;
use fv_sim::DrrScheduler;

use crate::packet::{Packet, QpId};
use crate::qp::NetError;

/// DRR arbiter over a fixed set of flows (one per dynamic region /
/// queue pair slot).
#[derive(Debug, Clone)]
pub struct EgressArbiter {
    drr: DrrScheduler<Packet>,
    /// Per-slot list of stream ids bound to that flow (one for a plain
    /// connection, many for a doorbell-batched submission).
    slots: Vec<Vec<QpId>>,
}

impl EgressArbiter {
    /// An arbiter with `flows` slots (the number of dynamic regions).
    pub fn new(flows: usize) -> Self {
        EgressArbiter {
            // Quantum must cover the largest wire size (payload+header).
            drr: DrrScheduler::new(flows, PACKET_BYTES + 64),
            slots: vec![Vec::new(); flows],
        }
    }

    /// Bind a queue pair (or one batched stream of a queue pair) to a
    /// flow slot at connection establishment / doorbell ring. Binding
    /// the same id twice is a no-op; several ids may share one slot.
    ///
    /// # Panics
    /// Panics if the id is already bound to a *different* slot — flows
    /// are wired once at setup, so a double wiring is a harness bug, not
    /// a runtime condition.
    pub fn bind(&mut self, slot: usize, qp: QpId) {
        if let Some(existing) = self.slot_of(qp) {
            assert_eq!(existing, slot, "qp {qp} already bound to slot {existing}");
            return;
        }
        self.slots[slot].push(qp);
    }

    /// Release a slot and every stream bound to it (at disconnect),
    /// draining any packets still queued for the slot. Without the
    /// drain those packets linger in the DRR after their owner is gone:
    /// they burn the dead flow's wire share and the slot's next
    /// occupant inherits a stranger's bytes ahead of its own. The
    /// caller decides their fate — requeue onto the departing flow's
    /// replacement, count them as dropped, or just let them fall.
    pub fn unbind(&mut self, slot: usize) -> Vec<Packet> {
        self.slots[slot].clear();
        self.drr.drain_flow(slot)
    }

    /// The slot a QP is bound to, if any.
    pub fn slot_of(&self, qp: QpId) -> Option<usize> {
        self.slots.iter().position(|s| s.contains(&qp))
    }

    /// Streams bound to a slot.
    pub fn bound_count(&self, slot: usize) -> usize {
        self.slots[slot].len()
    }

    /// Enqueue a packet for transmission on its flow's slot.
    ///
    /// # Errors
    /// Returns [`NetError::UnboundQp`] when the packet's QP is not bound
    /// to any egress slot; callers surface this instead of crashing the
    /// episode.
    pub fn push(&mut self, pkt: Packet) -> Result<(), NetError> {
        let slot = self
            .slot_of(pkt.qp)
            .ok_or(NetError::UnboundQp { qp: pkt.qp })?;
        self.drr.push(slot, pkt.wire_bytes(), pkt);
        Ok(())
    }

    /// Next packet in fair order.
    pub fn pop(&mut self) -> Option<Packet> {
        self.drr.pop().map(|(_, p)| p)
    }

    /// Queued packet count.
    pub fn len(&self) -> usize {
        self.drr.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.drr.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt(qp: u32, seq: u32) -> Packet {
        Packet::data(qp, seq, Bytes::from(vec![0u8; 1024]), false)
    }

    #[test]
    fn fair_interleave_between_two_flows() {
        let mut arb = EgressArbiter::new(2);
        arb.bind(0, 10);
        arb.bind(1, 20);
        for s in 0..8 {
            arb.push(pkt(10, s)).unwrap();
        }
        for s in 0..8 {
            arb.push(pkt(20, s)).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| arb.pop()).map(|p| p.qp).collect();
        assert_eq!(order.len(), 16);
        // Every adjacent pair must contain both flows (strict alternation
        // for equal-size packets).
        for w in order.chunks(2) {
            assert_ne!(w[0], w[1], "flows must interleave: {order:?}");
        }
    }

    #[test]
    fn greedy_flow_cannot_starve_late_joiner() {
        let mut arb = EgressArbiter::new(2);
        arb.bind(0, 1);
        arb.bind(1, 2);
        for s in 0..100 {
            arb.push(pkt(1, s)).unwrap();
        }
        // Flow 2 joins with a single packet; it must be served within the
        // next two pops.
        arb.push(pkt(2, 0)).unwrap();
        let first = arb.pop().unwrap();
        let second = arb.pop().unwrap();
        assert!(
            first.qp == 2 || second.qp == 2,
            "late flow starved: {} then {}",
            first.qp,
            second.qp
        );
    }

    #[test]
    fn unbound_qp_is_a_typed_error() {
        let mut arb = EgressArbiter::new(1);
        assert_eq!(
            arb.push(pkt(99, 0)),
            Err(NetError::UnboundQp { qp: 99 }),
            "routing an unbound flow must surface, not crash"
        );
        assert!(arb.is_empty(), "rejected packet must not be queued");
    }

    #[test]
    fn batched_streams_share_one_flow_fairly() {
        // Slot 0 carries a 2-stream batch, slot 1 a plain connection.
        // Byte-fairness is per *slot*: the batch does not get double the
        // wire for having two streams.
        let mut arb = EgressArbiter::new(2);
        arb.bind(0, 10);
        arb.bind(0, 11);
        arb.bind(1, 20);
        assert_eq!(arb.bound_count(0), 2);
        for s in 0..4 {
            arb.push(pkt(10, s)).unwrap();
            arb.push(pkt(11, s)).unwrap();
            arb.push(pkt(20, s)).unwrap();
        }
        let mut slot0 = 0u32;
        let mut slot1 = 0u32;
        // Serve one full DRR round trip of 8 packets: equal byte shares.
        for _ in 0..8 {
            let p = arb.pop().unwrap();
            if p.qp == 20 {
                slot1 += 1;
            } else {
                slot0 += 1;
            }
        }
        assert_eq!(slot0, 4, "batch slot must not out-share a plain flow");
        assert_eq!(slot1, 4);
    }

    #[test]
    fn bind_unbind_cycle() {
        let mut arb = EgressArbiter::new(1);
        arb.bind(0, 5);
        assert_eq!(arb.slot_of(5), Some(0));
        arb.unbind(0);
        assert_eq!(arb.slot_of(5), None);
        arb.bind(0, 6);
        assert_eq!(arb.slot_of(6), Some(0));
        // Re-binding the same id is idempotent.
        arb.bind(0, 6);
        assert_eq!(arb.bound_count(0), 1);
    }

    #[test]
    fn unbind_drains_queued_packets() {
        let mut arb = EgressArbiter::new(2);
        arb.bind(0, 10);
        arb.bind(1, 20);
        for s in 0..3 {
            arb.push(pkt(10, s)).unwrap();
        }
        arb.push(pkt(20, 0)).unwrap();

        // Disconnect flow 10 with three packets still queued: they must
        // come back to the caller, in order, and leave the DRR.
        let drained = arb.unbind(0);
        assert_eq!(drained.len(), 3, "queued packets must be drained");
        assert!(drained.iter().all(|p| p.qp == 10));
        assert_eq!(
            drained.iter().map(|p| p.seq).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "drain preserves arrival order"
        );
        assert_eq!(arb.len(), 1, "the live flow's packet stays queued");

        // The slot's next occupant must not inherit the dead flow's
        // bytes or banked deficit: only its own traffic comes out.
        arb.bind(0, 30);
        arb.push(pkt(30, 7)).unwrap();
        let order: Vec<u32> = std::iter::from_fn(|| arb.pop()).map(|p| p.qp).collect();
        assert_eq!(order.len(), 2);
        assert!(!order.contains(&10), "ghost packets served after unbind");
        assert!(order.contains(&20) && order.contains(&30));

        // Unbinding an empty slot drains nothing.
        assert!(arb.unbind(1).is_empty());
    }
}
