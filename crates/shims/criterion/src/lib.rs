//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The bench targets under `crates/bench/benches/` are written against
//! the upstream `criterion` interface. With no crates.io access, this
//! shim keeps them compiling and running: each benchmark executes its
//! closure `sample_size` times around a warm-up iteration and prints the
//! mean wall-clock time per iteration. No statistical analysis, HTML
//! reports, or outlier rejection — the simulated response times these
//! benches fold into their names are produced by `fv-sim`, not by host
//! timing, so a plain mean is enough to keep the harness honest.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, like upstream.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, None, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group with a per-iteration throughput unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.criterion.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op that exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Per-iteration throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Handed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: usize,
    /// Mean wall time per iteration, filled by [`Bencher::iter`].
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_one(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => {
            let rate = throughput.map(|t| match t {
                Throughput::Bytes(n) => {
                    format!(
                        "  {:>8.2} MiB/s",
                        n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                    )
                }
                Throughput::Elements(n) => {
                    format!("  {:>8.2} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
                }
            });
            println!(
                "bench {id:<48} {:>12.3} µs/iter{}",
                mean.as_secs_f64() * 1e6,
                rate.unwrap_or_default()
            );
        }
        None => println!("bench {id:<48} (no iter() call)"),
    }
}

/// Bundle benchmark functions into a named group runner, mirroring the
/// upstream macro's `name`/`config`/`targets` form and the plain list
/// form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("shim/self_test", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4, "warm-up + 3 samples");
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(1024));
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| total += u64::from(x))
        });
        g.finish();
        assert_eq!(total, 21);
    }
}
