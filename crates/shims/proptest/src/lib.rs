//! Offline drop-in subset of the `proptest` property-testing API.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the slice of `proptest` its test suites actually use: the
//! [`Strategy`] trait (with `prop_map` / `prop_flat_map` / `boxed`),
//! range / tuple / collection / sample strategies, `any::<T>()`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of being minimized. Failures stay
//!   reproducible because generation is fully deterministic.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG
//!   seed from its own module path and name, so every run of a given
//!   binary explores the same cases. There is no `PROPTEST_CASES`
//!   environment handling; case counts come from [`ProptestConfig`].
//! * Only the strategy combinators used in this repository exist.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// Configuration block accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config with the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe bridge backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Strategy::prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Choose uniformly among `alternatives` (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! of nothing");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges and `any`
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The whole-domain strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Composite strategies: tuples and per-element vectors
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A `Vec` of strategies generates element-wise (one value per entry).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// prop:: modules (collection, sample, array)
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Size specification accepted by [`vec()`] and [`hash_set()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64 + 1) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from the
    /// configured range.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::hash_set(element, size)`. If the element domain
    /// is too small to reach the drawn size, the set saturates at
    /// whatever was reachable after a bounded number of draws (upstream
    /// rejects instead; nothing in this repo depends on the difference —
    /// the minimum size is 1 everywhere, which a single draw satisfies).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng).max(1);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(32) + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].clone()
        }
    }
}

/// Fixed-size array strategies (`prop::array`).
pub mod array {
    use super::*;

    /// Strategy for `[S::Value; 16]`.
    pub struct Uniform16<S>(S);

    /// `prop::array::uniform16(element)`.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16(element)
    }

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 16] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Everything a property-test file conventionally glob-imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                { $body }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a property test (panics with the message; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("shim::ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(0usize..=3), &mut rng);
            assert!(w <= 3);
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn collections_honor_sizes() {
        let mut rng = crate::test_runner::TestRng::for_test("shim::collections");
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(any::<u8>(), 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
            let s = Strategy::generate(&prop::collection::hash_set(0u64..100, 1..=5), &mut rng);
            assert!((1..=5).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_wires_strategies(
            x in 0u64..100,
            (a, b) in (0u32..10, prop::sample::select(vec!["p", "q"])),
            v in prop::collection::vec(any::<bool>(), 0..4),
        ) {
            prop_assert!(x < 100);
            prop_assert!(a < 10);
            prop_assert!(b == "p" || b == "q");
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn oneof_and_maps(
            t in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)],
        ) {
            prop_assert!(t == 1 || t == 2 || t == 5 || t == 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let one: Vec<u64> = {
            let mut rng = crate::test_runner::TestRng::for_test("shim::det");
            (0..10)
                .map(|_| Strategy::generate(&(0u64..1_000_000), &mut rng))
                .collect()
        };
        let two: Vec<u64> = {
            let mut rng = crate::test_runner::TestRng::for_test("shim::det");
            (0..10)
                .map(|_| Strategy::generate(&(0u64..1_000_000), &mut rng))
                .collect()
        };
        assert_eq!(one, two);
    }
}
