//! Deterministic RNG driving the shimmed property tests.

/// xoshiro256** seeded from the test's identifier via FNV-1a +
/// splitmix64. Every run of a given test binary therefore replays the
/// same cases — failures reproduce without seed files.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Derive the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `0..bound` (`bound` = 0 means the full u64 range).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
