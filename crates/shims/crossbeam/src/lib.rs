//! Offline drop-in subset of `crossbeam`: the [`scope`] API, implemented
//! over `std::thread::scope` (stable since Rust 1.63, which postdates
//! `crossbeam::scope`'s design). Spawned closures receive the scope
//! again — like crossbeam, unlike std — so nested spawns keep working,
//! and `scope` returns a `thread::Result` instead of propagating the
//! main closure's panic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Handle to a scope in which threads can be spawned; a `Copy` wrapper
/// so closures can capture it by value.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread and return its result (`Err` if it panicked).
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope,
    /// matching crossbeam's signature (`|_|` when unused).
    pub fn spawn<T, F>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        T: Send + 'scope,
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(scope)),
        }
    }
}

/// Create a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn panicking_closure_returns_err() {
        let r: thread::Result<()> = scope(|_| panic!("boom"));
        assert!(r.is_err());
    }
}
