//! Offline drop-in subset of the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply cloneable, immutable, contiguous byte
//! buffer. The network stack moves packet payloads around by value; the
//! real `bytes` crate makes that an `Arc` bump rather than a memcpy, and
//! this shim preserves exactly that property with an `Arc<[u8]>` (plus a
//! zero-allocation path for `&'static` data).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone)]
pub enum Bytes {
    /// Borrowed from static storage (no allocation, no refcount).
    Static(&'static [u8]),
    /// Shared heap storage; clones bump a refcount.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes::Static(&[])
    }

    /// Borrow static data without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes::Static(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// View the contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Shared(a) => a,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Shared(v.into())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::Static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        if self.len() > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        match (&a, &b) {
            (Bytes::Shared(x), Bytes::Shared(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => panic!("heap buffers should share storage"),
        }
    }

    #[test]
    fn deref_to_slice() {
        let a = Bytes::from(vec![9u8, 8]);
        assert_eq!(&a[..], &[9, 8]);
        assert_eq!(a.to_vec(), vec![9, 8]);
    }
}
