//! Offline no-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Nothing in this workspace actually serializes (there is no
//! `serde_json` and no bound on `serde::Serialize` anywhere); the derives
//! exist so types can keep their upstream-compatible annotations,
//! including `#[serde(...)]` helper attributes. They expand to nothing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
