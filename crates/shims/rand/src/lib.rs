//! Offline drop-in subset of the `rand` crate.
//!
//! The workload generators need a deterministic, seedable RNG with
//! `gen_range` / `gen_bool`. This shim provides [`rngs::StdRng`] backed
//! by xoshiro256** (seeded via splitmix64, the reference seeding
//! procedure), which passes the statistical calibration checks the
//! workload tests make (selectivity within ±2 %, distinct-value
//! coverage). It is *not* the upstream `StdRng` stream — all seeds in
//! this repository only require determinism within one build, never
//! bit-compatibility with upstream `rand`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling support trait: what `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing RNG trait, mirroring the subset of `rand::Rng` the
/// workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a range (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // < 2^-64 per draw, far below anything the calibration
                // tests can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                #[allow(unused_comparisons)]
                let span = (hi - lo) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (see module docs for the
    /// compatibility caveat vs upstream `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_calibration() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.24..0.26).contains(&frac), "got {frac}");
    }

    #[test]
    fn gen_range_uniformity_rough() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "skewed buckets: {buckets:?}");
        }
    }
}
