//! Offline stub of the `serde` facade.
//!
//! The workspace annotates a few measurement types with
//! `#[derive(Serialize)]` so they stay drop-in compatible with the real
//! `serde` once network access exists, but nothing in-tree serializes —
//! there is no `serde_json` and no `S: Serialize` bound anywhere. This
//! stub therefore provides marker traits plus no-op derive macros (which
//! also swallow `#[serde(...)]` helper attributes).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Never implemented by the
/// no-op derive and never required by any bound in this workspace.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
