//! Offline drop-in subset of the `parking_lot` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the tiny slice of `parking_lot` the codebase actually uses — a
//! non-poisoning [`Mutex`] — implemented over `std::sync::Mutex`. The
//! semantics the callers rely on (mutual exclusion, no poison propagation
//! across panics) are preserved; the performance characteristics of the
//! real crate are not reproduced and do not matter here, because every
//! lock in the tree guards a short critical section of a discrete-event
//! simulation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::sync::PoisonError;

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with the `parking_lot` calling
/// convention: `lock()` returns the guard directly (no poisoning
/// `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic while holding the lock does not poison
    /// it — matching `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
