//! The RNIC comparator of Figure 6: one-sided RDMA reads of remote host
//! DRAM through a commercial NIC over PCIe.

use fv_sim::calib::{
    self, CLIENT_COMPLETE, CLIENT_POST, PACKET_BYTES, RNIC_PCIE_LATENCY, RNIC_PCIE_PEAK,
    RNIC_PER_PACKET, RNIC_REQ_PROC, WIRE_ONE_WAY,
};
use fv_sim::SimDuration;

/// Host-DRAM first-access latency on the remote side (the RNIC DMAs from
/// ordinary DIMMs; much lower than the FPGA's softcore-controller path).
const HOST_DRAM_ACCESS: SimDuration = SimDuration::from_nanos(90);

/// Response time of a single one-sided RDMA read of `bytes` over the
/// commercial NIC: post + wire + NIC processing + PCIe DMA + per-packet
/// handling + serialization + wire + completion (§6.2, Figure 6(b)).
pub fn rnic_read_response_time(bytes: u64) -> SimDuration {
    let pkts = bytes.div_ceil(PACKET_BYTES).max(1);
    CLIENT_POST
        + WIRE_ONE_WAY
        + RNIC_REQ_PROC
        + RNIC_PCIE_LATENCY
        + HOST_DRAM_ACCESS
        + RNIC_PER_PACKET * pkts
        + calib::transfer(bytes, RNIC_PCIE_PEAK)
        + WIRE_ONE_WAY
        + CLIENT_COMPLETE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_reads_land_in_figure6b_band() {
        // Figure 6(b): small-transfer response times sit in the 2–3 µs
        // band.
        let t = rnic_read_response_time(512).as_micros_f64();
        assert!((1.5..3.5).contains(&t), "got {t} µs");
    }

    #[test]
    fn grows_with_size_and_packets() {
        let t1 = rnic_read_response_time(1024);
        let t8 = rnic_read_response_time(8 * 1024);
        let t32 = rnic_read_response_time(32 * 1024);
        assert!(t8 > t1);
        assert!(
            t32 > t8 + (t8 - t1),
            "super-linear past 8 kB (paper: 'substantial increase')"
        );
    }
}
