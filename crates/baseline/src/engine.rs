//! The software query engine behind LCPU and RCPU.
//!
//! Functionally this is a straightforward row-at-a-time engine over the
//! same byte images Farview stores — results are comparable
//! row-for-row with the offloaded pipelines (the cross-engine tests
//! depend on it). Timing comes from [`CpuCostModel`], not from host wall
//! time.

use std::collections::HashMap;

use fv_data::{ColumnType, Schema, Table, Value};
use fv_pipeline::{AggFunc, AggSpec, PredicateExpr};
use fv_sim::calib::{
    self, CLIENT_COMPLETE, CLIENT_POST, PACKET_BYTES, RCPU_RPC_OVERHEAD, RNIC_PCIE_PEAK,
    RNIC_PER_PACKET, WIRE_ONE_WAY,
};
use fv_sim::SimDuration;

use crate::cost::{CostBreakdown, CpuCostModel};

/// Which baseline this engine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Local buffer cache + local CPU (§6.1).
    Lcpu,
    /// Remote buffer cache over two-sided RDMA + remote CPU (§6.1).
    Rcpu,
}

/// Result of a baseline query: real bytes plus modelled time.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Result payload (row format of `schema`).
    pub payload: Vec<u8>,
    /// Result schema.
    pub schema: Schema,
    /// Modelled end-to-end time.
    pub time: SimDuration,
    /// Where the time went.
    pub breakdown: CostBreakdown,
}

impl BaselineOutcome {
    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        self.payload.len() / self.schema.row_bytes()
    }
}

/// The baseline engine.
#[derive(Debug, Clone, Copy)]
pub struct CpuEngine {
    kind: BaselineKind,
    model: CpuCostModel,
}

impl CpuEngine {
    /// A single-process engine of the given kind.
    pub fn new(kind: BaselineKind) -> Self {
        CpuEngine {
            kind,
            model: CpuCostModel::default(),
        }
    }

    /// Multi-process variant (Figure 12 uses six MPI processes).
    pub fn with_processes(kind: BaselineKind, processes: usize) -> Self {
        CpuEngine {
            kind,
            model: CpuCostModel::with_processes(processes),
        }
    }

    /// The cost model in use.
    pub fn model(&self) -> &CpuCostModel {
        &self.model
    }

    /// For RCPU, add the two-sided RDMA exchange: request RPC, result
    /// transfer over the commercial NIC, and the receive-side copy.
    fn network_cost(&self, result_bytes: u64) -> SimDuration {
        match self.kind {
            BaselineKind::Lcpu => SimDuration::ZERO,
            BaselineKind::Rcpu => {
                let pkts = result_bytes.div_ceil(PACKET_BYTES).max(1);
                RCPU_RPC_OVERHEAD
                    + (CLIENT_POST + WIRE_ONE_WAY) * 2
                    + RNIC_PER_PACKET * pkts
                    + calib::transfer(result_bytes, RNIC_PCIE_PEAK)
                    + self.model.materialize(result_bytes)
                    + CLIENT_COMPLETE
            }
        }
    }

    fn outcome(
        &self,
        payload: Vec<u8>,
        schema: Schema,
        compute: SimDuration,
        scanned: u64,
    ) -> BaselineOutcome {
        let breakdown = CostBreakdown {
            fixed: self.model.fixed(),
            scan: self.model.scan(scanned),
            compute,
            materialize: self.model.materialize(payload.len() as u64),
            network: self.network_cost(payload.len() as u64),
        };
        BaselineOutcome {
            time: breakdown.total(),
            payload,
            schema,
            breakdown,
        }
    }

    /// Read the whole table into the query's working space ("query
    /// thread reads the data ... copying the data to their private
    /// working space", §3).
    pub fn raw_read(&self, table: &Table) -> BaselineOutcome {
        self.outcome(
            table.bytes().to_vec(),
            table.schema().clone(),
            SimDuration::ZERO,
            table.byte_len() as u64,
        )
    }

    /// `SELECT <projection> FROM t WHERE <pred>`.
    pub fn select(
        &self,
        table: &Table,
        pred: &PredicateExpr,
        projection: Option<&[usize]>,
    ) -> BaselineOutcome {
        let schema = table.schema();
        let cols: Vec<usize> = match projection {
            Some(c) => c.to_vec(),
            None => (0..schema.column_count()).collect(),
        };
        let out_schema = schema.project(&cols);
        let mut payload = Vec::new();
        for row in table.rows() {
            if pred.eval(&row) {
                for &c in &cols {
                    payload.extend_from_slice(row.col_raw(c));
                }
            }
        }
        let compute = self.model.predicates(table.row_count() as u64);
        self.outcome(payload, out_schema, compute, table.byte_len() as u64)
    }

    /// `SELECT DISTINCT <cols> FROM t` — hash-based, first-seen order.
    /// Scans borrowed [`fv_data::RowView`]s (`Table::rows`); only the
    /// first occurrence of a key allocates.
    pub fn distinct(&self, table: &Table, cols: &[usize]) -> BaselineOutcome {
        let schema = table.schema();
        let out_schema = schema.project(cols);
        let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        let mut payload = Vec::new();
        let mut hits = 0u64;
        let mut key = Vec::new();
        for row in table.rows() {
            key.clear();
            for &c in cols {
                key.extend_from_slice(row.col_raw(c));
            }
            if seen.contains(key.as_slice()) {
                hits += 1;
            } else {
                payload.extend_from_slice(&key);
                seen.insert(std::mem::take(&mut key));
            }
        }
        let inserts = seen.len() as u64;
        let compute = self.model.hashing(inserts, hits);
        self.outcome(payload, out_schema, compute, table.byte_len() as u64)
    }

    /// `SELECT <keys>, <aggs> FROM t GROUP BY <keys>` — hash aggregation
    /// in first-seen order, byte-compatible with the FPGA operator.
    pub fn group_by(&self, table: &Table, keys: &[usize], aggs: &[AggSpec]) -> BaselineOutcome {
        let schema = table.schema();
        let mut out_cols = schema.project(keys).columns().to_vec();
        for a in aggs {
            let func = match a.func {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::SumF64 => "sumf64",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
                AggFunc::Avg => "avg",
            };
            let ty = match (a.func, schema.column(a.col).ty) {
                (AggFunc::Count, _) => ColumnType::U64,
                (AggFunc::Avg | AggFunc::SumF64, _) => ColumnType::F64,
                (_, t) => t,
            };
            out_cols.push(fv_data::Column {
                name: format!("{func}_{}", schema.column(a.col).name),
                ty,
            });
        }
        let out_schema = Schema::new(out_cols);

        // First-seen group order as an index map: keys are stored once
        // (in `entries`), the hash map only holds indices — no per-group
        // double clone, no re-hash when emitting.
        let mut groups: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut entries: Vec<(Vec<u8>, Vec<Acc>)> = Vec::new();
        let mut hits = 0u64;
        let mut key = Vec::new();
        for row in table.rows() {
            key.clear();
            for &c in keys {
                key.extend_from_slice(row.col_raw(c));
            }
            let idx = match groups.get(key.as_slice()) {
                Some(&i) => {
                    hits += 1;
                    i
                }
                None => {
                    let i = entries.len();
                    entries.push((key.clone(), aggs.iter().map(|a| Acc::new(a.func)).collect()));
                    groups.insert(std::mem::take(&mut key), i);
                    i
                }
            };
            for (spec, acc) in aggs.iter().zip(entries[idx].1.iter_mut()) {
                acc.update(&row.value(spec.col));
            }
        }
        let mut payload = Vec::new();
        for (k, accs) in &entries {
            payload.extend_from_slice(k);
            for (spec, acc) in aggs.iter().zip(accs) {
                payload.extend_from_slice(&acc.emit(spec.func, schema.column(spec.col).ty));
            }
        }
        let compute = self.model.hashing(entries.len() as u64, hits);
        self.outcome(payload, out_schema, compute, table.byte_len() as u64)
    }

    /// Inner hash join against a small build table (the CPU version of
    /// the §7 extension): build a hash map, probe row-at-a-time, emit
    /// `probe ++ build-minus-key` rows in probe order.
    pub fn join_small(
        &self,
        table: &Table,
        probe_col: usize,
        build: &Table,
        build_key: usize,
    ) -> BaselineOutcome {
        let probe_schema = table.schema();
        let build_schema = build.schema();
        let key_range = build_schema.column_range(build_key);

        let mut out_cols = probe_schema.columns().to_vec();
        for (i, c) in build_schema.columns().iter().enumerate() {
            if i != build_key {
                out_cols.push(fv_data::Column {
                    name: format!("b_{}", c.name),
                    ty: c.ty,
                });
            }
        }
        let out_schema = Schema::new(out_cols);

        // Build phase.
        let mut map: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
        for row in build.rows() {
            let raw = row.raw();
            let key = raw[key_range.clone()].to_vec();
            let mut payload = Vec::with_capacity(raw.len() - key_range.len());
            payload.extend_from_slice(&raw[..key_range.start]);
            payload.extend_from_slice(&raw[key_range.end..]);
            map.entry(key).or_default().push(payload);
        }
        // Probe phase.
        let probe_range = probe_schema.column_range(probe_col);
        let mut payload = Vec::new();
        for row in table.rows() {
            let raw = row.raw();
            if let Some(matches) = map.get(&raw[probe_range.clone()]) {
                for m in matches {
                    payload.extend_from_slice(raw);
                    payload.extend_from_slice(m);
                }
            }
        }
        let compute = self
            .model
            .hashing(build.row_count() as u64, table.row_count() as u64);
        // The probe scans the big table; the build side is cache-resident.
        self.outcome(
            payload,
            out_schema,
            compute,
            (table.byte_len() + build.byte_len()) as u64,
        )
    }

    /// Regex selection over string column `col` (RE2-equivalent DFA).
    pub fn regex_match(&self, table: &Table, col: usize, pattern: &str) -> BaselineOutcome {
        let re = fv_regex::Regex::compile(pattern).expect("valid pattern");
        let mut payload = Vec::new();
        let mut string_bytes = 0u64;
        for row in table.rows() {
            let field = row.col_raw(col);
            let end = field.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
            string_bytes += end as u64;
            if re.is_match(&field[..end]) {
                payload.extend_from_slice(row.raw());
            }
        }
        let compute = self.model.regex(string_bytes);
        self.outcome(
            payload,
            table.schema().clone(),
            compute,
            table.byte_len() as u64,
        )
    }

    /// Read an encrypted table, decrypting in software (Crypto++-like).
    pub fn decrypt_read(&self, table: &Table, key: &[u8; 16], iv: &[u8; 16]) -> BaselineOutcome {
        let mut payload = table.bytes().to_vec();
        fv_crypto::ctr_apply_at(key, iv, 0, &mut payload);
        let compute = self.model.aes(payload.len() as u64);
        self.outcome(
            payload,
            table.schema().clone(),
            compute,
            table.byte_len() as u64,
        )
    }
}

/// Independent aggregate accumulator (deliberately *not* shared with
/// `fv-pipeline` so the two engines cross-validate each other).
#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    SumU(u64),
    SumI(i64),
    SumF(f64),
    MinU(u64),
    MinI(i64),
    MinF(f64),
    MaxU(u64),
    MaxI(i64),
    MaxF(f64),
    Avg { sum: f64, n: u64 },
    Unset(AggFunc),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::SumF64 => Acc::SumF(0.0),
            other => Acc::Unset(other),
        }
    }

    fn update(&mut self, v: &Value) {
        if let Acc::Unset(func) = *self {
            *self = match (func, v) {
                (AggFunc::Sum, Value::U64(_)) => Acc::SumU(0),
                (AggFunc::Sum, Value::I64(_)) => Acc::SumI(0),
                (AggFunc::Sum, Value::F64(_)) => Acc::SumF(0.0),
                (AggFunc::Min, Value::U64(_)) => Acc::MinU(u64::MAX),
                (AggFunc::Min, Value::I64(_)) => Acc::MinI(i64::MAX),
                (AggFunc::Min, Value::F64(_)) => Acc::MinF(f64::INFINITY),
                (AggFunc::Max, Value::U64(_)) => Acc::MaxU(0),
                (AggFunc::Max, Value::I64(_)) => Acc::MaxI(i64::MIN),
                (AggFunc::Max, Value::F64(_)) => Acc::MaxF(f64::NEG_INFINITY),
                (f, v) => unreachable!("agg {f:?} over {v:?}"),
            };
        }
        match (self, v) {
            (Acc::Count(n), _) => *n += 1,
            (Acc::SumU(s), Value::U64(x)) => *s = s.wrapping_add(*x),
            (Acc::SumI(s), Value::I64(x)) => *s = s.wrapping_add(*x),
            (Acc::SumF(s), Value::F64(x)) => *s += x,
            // SumF64 over integer columns: f64 accumulation like Avg.
            (Acc::SumF(s), Value::U64(x)) => *s += *x as f64,
            (Acc::SumF(s), Value::I64(x)) => *s += *x as f64,
            (Acc::MinU(m), Value::U64(x)) => *m = (*m).min(*x),
            (Acc::MinI(m), Value::I64(x)) => *m = (*m).min(*x),
            (Acc::MinF(m), Value::F64(x)) => *m = m.min(*x),
            (Acc::MaxU(m), Value::U64(x)) => *m = (*m).max(*x),
            (Acc::MaxI(m), Value::I64(x)) => *m = (*m).max(*x),
            (Acc::MaxF(m), Value::F64(x)) => *m = m.max(*x),
            (Acc::Avg { sum, n }, x) => {
                *sum += match x {
                    Value::U64(v) => *v as f64,
                    Value::I64(v) => *v as f64,
                    Value::F64(v) => *v,
                    Value::Bytes(_) => unreachable!("avg over bytes"),
                };
                *n += 1;
            }
            (a, v) => unreachable!("acc {a:?} fed {v:?}"),
        }
    }

    fn emit(&self, _func: AggFunc, _ty: ColumnType) -> [u8; 8] {
        match self {
            Acc::Count(n) => n.to_le_bytes(),
            Acc::SumU(s) => s.to_le_bytes(),
            Acc::SumI(s) => s.to_le_bytes(),
            Acc::SumF(s) => s.to_le_bytes(),
            Acc::MinU(m) => m.to_le_bytes(),
            Acc::MinI(m) => m.to_le_bytes(),
            Acc::MinF(m) => m.to_le_bytes(),
            Acc::MaxU(m) => m.to_le_bytes(),
            Acc::MaxI(m) => m.to_le_bytes(),
            Acc::MaxF(m) => m.to_le_bytes(),
            Acc::Avg { sum, n } => {
                let avg = if *n == 0 { 0.0 } else { sum / *n as f64 };
                avg.to_le_bytes()
            }
            Acc::Unset(_) => 0u64.to_le_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_data::TableBuilder;

    fn table(rows: u64, groups: u64) -> Table {
        let schema = Schema::uniform_u64(8);
        let mut b = TableBuilder::with_capacity(schema, rows as usize);
        for i in 0..rows {
            b.push_values(
                (0..8)
                    .map(|c| Value::U64(if c == 0 { i % groups } else { i * 8 + c }))
                    .collect(),
            );
        }
        b.build()
    }

    #[test]
    fn lcpu_select_functional_and_timed() {
        let t = table(1000, 1000);
        let e = CpuEngine::new(BaselineKind::Lcpu);
        // c1 = 8i + 1 < 801 -> i < 100.
        let out = e.select(&t, &PredicateExpr::lt(1, 801u64), None);
        assert_eq!(out.row_count(), 100);
        assert!(out.breakdown.network == SimDuration::ZERO);
        assert!(out.time > out.breakdown.compute);
    }

    #[test]
    fn rcpu_adds_network_and_is_slower() {
        let t = table(4096, 4096);
        let l = CpuEngine::new(BaselineKind::Lcpu).raw_read(&t);
        let r = CpuEngine::new(BaselineKind::Rcpu).raw_read(&t);
        assert_eq!(l.payload, r.payload);
        assert!(r.breakdown.network > SimDuration::ZERO);
        assert!(r.time > l.time, "RCPU must be slower than LCPU");
    }

    #[test]
    fn distinct_first_seen_order() {
        let t = table(100, 7);
        let e = CpuEngine::new(BaselineKind::Lcpu);
        let out = e.distinct(&t, &[0]);
        assert_eq!(out.row_count(), 7);
        let first = u64::from_le_bytes(out.payload[..8].try_into().unwrap());
        assert_eq!(first, 0, "first-seen order");
    }

    #[test]
    fn group_by_sums() {
        let schema = Schema::uniform_u64(2);
        let mut b = TableBuilder::new(schema.clone());
        for i in 0..30u64 {
            b.push_values(vec![Value::U64(i % 3), Value::U64(1)]);
        }
        let t = b.build();
        let e = CpuEngine::new(BaselineKind::Lcpu);
        let out = e.group_by(
            &t,
            &[0],
            &[AggSpec {
                col: 1,
                func: AggFunc::Sum,
            }],
        );
        assert_eq!(out.row_count(), 3);
        for chunk in out.payload.chunks_exact(16) {
            assert_eq!(u64::from_le_bytes(chunk[8..16].try_into().unwrap()), 10);
        }
    }

    #[test]
    fn six_processes_slower_than_one() {
        let t = table(8192, 8192);
        let one = CpuEngine::new(BaselineKind::Lcpu).distinct(&t, &[0]);
        let six = CpuEngine::with_processes(BaselineKind::Lcpu, 6).distinct(&t, &[0]);
        assert_eq!(one.payload, six.payload);
        // Hash compute dominates distinct, so contention shows up mostly
        // in the scan/materialize phases; expect a >25 % overall hit.
        assert!(
            six.time.as_nanos() * 4 > one.time.as_nanos() * 5,
            "interference must bite: {} vs {}",
            six.time,
            one.time
        );
    }

    #[test]
    fn join_small_inner_semantics() {
        let schema = Schema::uniform_u64(2);
        let mut b = TableBuilder::new(schema.clone());
        for i in 0..20u64 {
            b.push_values(vec![Value::U64(i % 5), Value::U64(i)]);
        }
        let probe = b.build();
        let mut bb = TableBuilder::new(Schema::uniform_u64(2));
        bb.push_values(vec![Value::U64(1), Value::U64(100)]);
        bb.push_values(vec![Value::U64(3), Value::U64(300)]);
        let build = bb.build();
        let e = CpuEngine::new(BaselineKind::Lcpu);
        let out = e.join_small(&probe, 0, &build, 0);
        // Keys 1 and 3 each appear 4 times in the probe.
        assert_eq!(out.row_count(), 8);
        assert_eq!(out.schema.column_count(), 3);
        assert_eq!(out.schema.column(2).name, "b_c1");
    }

    #[test]
    fn decrypt_read_recovers_plaintext() {
        let t = table(64, 64);
        let key = [1u8; 16];
        let iv = [2u8; 16];
        let mut image = t.bytes().to_vec();
        fv_crypto::ctr_apply_at(&key, &iv, 0, &mut image);
        let enc = Table::from_bytes(t.schema().clone(), image);
        let e = CpuEngine::new(BaselineKind::Lcpu);
        let out = e.decrypt_read(&enc, &key, &iv);
        assert_eq!(out.payload, t.bytes());
        assert!(out.breakdown.compute > SimDuration::ZERO);
    }
}
