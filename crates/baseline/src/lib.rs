//! # fv-baseline — the paper's CPU comparison points
//!
//! §6.1 defines three baselines:
//!
//! * **LCPU** — "a buffer cache implemented in local (client) memory,
//!   where the processing is done on the local CPU" (Xeon Gold 6248).
//! * **RCPU** — "a remote buffer cache implemented on the memory of a
//!   different machine and reachable through a commercial NIC via
//!   two-sided RDMA operations" (Xeon Gold 6154 + ConnectX-5).
//! * **RNIC** — one-sided RDMA reads of remote host memory over PCIe
//!   (the Figure 6 microbenchmark comparator).
//!
//! [`CpuEngine`] executes the same queries as the Farview pipeline over
//! the identical byte images (results are byte-compatible — the
//! cross-validation tests in `tests/` rely on that) and charges a
//! calibrated CPU cost model: DRAM streaming bandwidth, per-tuple
//! predicate/hash costs, RE2-like per-byte regex cost, Crypto++-like AES
//! throughput, and multi-process cache/bandwidth interference for the
//! Figure 12 experiment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

mod cost;
mod engine;
mod rnic;

pub use cost::{CostBreakdown, CpuCostModel};
pub use engine::{BaselineKind, BaselineOutcome, CpuEngine};
pub use rnic::rnic_read_response_time;
