//! The CPU cost model.
//!
//! Charges exactly the effects the paper attributes its baseline
//! slowdowns to: "LCPU pays a significant price, because it has to read
//! the data from DRAM and not from cache, and also write it back to
//! DRAM" (§6.4); hash-table resizing and per-insert cache misses (§6.5);
//! per-byte regex cost (§6.6); software AES throughput (§6.7); and
//! cache/DRAM interference between concurrent processes (§6.8).

use fv_sim::calib::{
    CPU_AES_BW, CPU_HASH_HIT_NS, CPU_HASH_INSERT_NS, CPU_INTERFERENCE_FACTOR, CPU_PREDICATE_NS,
    CPU_READ_BW, CPU_REGEX_NS_PER_BYTE, CPU_SOCKET_BW, CPU_WRITE_BW, LCPU_FIXED,
};
use fv_sim::{calib, SimDuration};

/// Per-phase cost record, so experiments can report where time went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Fixed software overhead.
    pub fixed: SimDuration,
    /// Streaming the base table out of DRAM.
    pub scan: SimDuration,
    /// Per-tuple compute (predicates, hashing, regex, AES).
    pub compute: SimDuration,
    /// Materializing the result back to memory.
    pub materialize: SimDuration,
    /// Network time (RCPU only).
    pub network: SimDuration,
}

impl CostBreakdown {
    /// Total time.
    pub fn total(&self) -> SimDuration {
        self.fixed + self.scan + self.compute + self.materialize + self.network
    }
}

/// The calibrated single-process / multi-process CPU model.
#[derive(Debug, Clone, Copy)]
pub struct CpuCostModel {
    /// Concurrent processes competing for the socket (Figure 12 uses 6).
    pub processes: usize,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel { processes: 1 }
    }
}

impl CpuCostModel {
    /// A model with `processes` concurrent query processes.
    pub fn with_processes(processes: usize) -> Self {
        assert!(processes >= 1);
        CpuCostModel { processes }
    }

    /// Interference multiplier on per-tuple compute (shared caches).
    fn compute_factor(&self) -> f64 {
        if self.processes > 1 {
            CPU_INTERFERENCE_FACTOR
        } else {
            1.0
        }
    }

    /// Effective per-process streaming read bandwidth.
    pub fn read_bw(&self) -> f64 {
        let fair_share = CPU_SOCKET_BW / self.processes as f64;
        let per_proc = CPU_READ_BW.min(fair_share);
        if self.processes > 1 {
            per_proc / CPU_INTERFERENCE_FACTOR
        } else {
            per_proc
        }
    }

    /// Effective per-process streaming write bandwidth.
    pub fn write_bw(&self) -> f64 {
        let ratio = CPU_WRITE_BW / CPU_READ_BW;
        self.read_bw() * ratio
    }

    /// Fixed query overhead.
    pub fn fixed(&self) -> SimDuration {
        LCPU_FIXED
    }

    /// Stream `bytes` from DRAM into the core.
    pub fn scan(&self, bytes: u64) -> SimDuration {
        calib::transfer(bytes, self.read_bw())
    }

    /// Materialize `bytes` of result.
    pub fn materialize(&self, bytes: u64) -> SimDuration {
        calib::transfer(bytes, self.write_bw())
    }

    /// Evaluate predicates over `tuples`.
    pub fn predicates(&self, tuples: u64) -> SimDuration {
        SimDuration::from_nanos(
            (tuples as f64 * CPU_PREDICATE_NS as f64 * self.compute_factor()) as u64,
        )
    }

    /// Hash-table work: `inserts` new keys (resize-amortized) plus
    /// `hits` lookups of existing keys.
    pub fn hashing(&self, inserts: u64, hits: u64) -> SimDuration {
        let ns = (inserts as f64 * CPU_HASH_INSERT_NS as f64
            + hits as f64 * CPU_HASH_HIT_NS as f64)
            * self.compute_factor();
        SimDuration::from_nanos(ns as u64)
    }

    /// RE2-like regex scan over `bytes` of string data.
    pub fn regex(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(
            (bytes as f64 * CPU_REGEX_NS_PER_BYTE * self.compute_factor()) as u64,
        )
    }

    /// Software AES-128-CTR over `bytes`.
    pub fn aes(&self, bytes: u64) -> SimDuration {
        calib::transfer(bytes, CPU_AES_BW / self.compute_factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_bandwidths() {
        let m = CpuCostModel::default();
        assert_eq!(m.read_bw(), CPU_READ_BW);
        assert!((m.write_bw() - CPU_WRITE_BW).abs() < 1.0);
    }

    #[test]
    fn six_processes_contend() {
        let solo = CpuCostModel::default();
        let six = CpuCostModel::with_processes(6);
        assert!(six.read_bw() < solo.read_bw() / 2.0);
        assert!(six.hashing(1000, 0) > solo.hashing(1000, 0));
    }

    #[test]
    fn figure8_scale_check() {
        // LCPU at 1 MB, 100% selectivity: scan 1 MB + write 1 MB + 16 K
        // predicate evaluations + fixed. The paper's Figure 8(a) puts
        // this in the few-hundred-µs band.
        let m = CpuCostModel::default();
        let total = (m.fixed() + m.scan(1 << 20) + m.predicates(16_384) + m.materialize(1 << 20))
            .as_micros_f64();
        assert!((250.0..450.0).contains(&total), "got {total} µs");
    }

    #[test]
    fn figure9_scale_check() {
        // LCPU distinct over 16 K all-distinct tuples: ~1 ms of hash
        // inserts on top of the scan (Figure 9(a) climbs past 1 ms).
        let m = CpuCostModel::default();
        let total =
            (m.fixed() + m.scan(1 << 20) + m.hashing(16_384, 0) + m.materialize(128 * 1024))
                .as_micros_f64();
        assert!((800.0..2000.0).contains(&total), "got {total} µs");
    }

    #[test]
    fn breakdown_totals() {
        let b = CostBreakdown {
            fixed: SimDuration::from_micros(1),
            scan: SimDuration::from_micros(2),
            compute: SimDuration::from_micros(3),
            materialize: SimDuration::from_micros(4),
            network: SimDuration::from_micros(5),
        };
        assert_eq!(b.total(), SimDuration::from_micros(15));
    }
}
