//! Property tests for the simulation substrate.

use proptest::prelude::*;

use fv_sim::{BandwidthServer, DrrScheduler, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FIFO bandwidth server: completions are monotone in admission
    /// order, never before arrival, and total busy time equals the sum of
    /// service demands.
    #[test]
    fn bandwidth_server_fifo_invariants(
        jobs in prop::collection::vec((0u64..10_000, 1u64..100_000), 1..40),
        rate in 1.0e6f64..1.0e10,
    ) {
        let mut s = BandwidthServer::new(rate, SimDuration::from_nanos(10));
        let mut last_done = SimTime::ZERO;
        let mut arrival = SimTime::ZERO;
        for &(gap, bytes) in &jobs {
            arrival += SimDuration::from_nanos(gap);
            let done = s.admit(arrival, bytes);
            prop_assert!(done >= arrival, "completion before arrival");
            prop_assert!(done >= last_done, "FIFO order violated");
            let min_service = SimDuration::for_bytes(bytes, rate);
            prop_assert!(done.since(arrival) >= min_service);
            last_done = done;
        }
        let total_bytes: u64 = jobs.iter().map(|j| j.1).sum();
        prop_assert_eq!(s.bytes_served(), total_bytes);
        prop_assert!(s.busy_until() == last_done);
    }

    /// DRR conservation: everything pushed is popped exactly once, per
    /// flow, regardless of interleaving.
    #[test]
    fn drr_conserves_jobs(
        pushes in prop::collection::vec((0usize..4, 1u64..1024), 1..100),
    ) {
        let mut drr: DrrScheduler<usize> = DrrScheduler::new(4, 1024);
        let mut pushed = [0usize; 4];
        for (i, &(flow, cost)) in pushes.iter().enumerate() {
            drr.push(flow, cost, i);
            pushed[flow] += 1;
        }
        let mut popped = [0usize; 4];
        let mut seen = std::collections::HashSet::new();
        while let Some((flow, tag)) = drr.pop() {
            popped[flow] += 1;
            prop_assert!(seen.insert(tag), "job popped twice");
            // The tag's original flow matches the pop-reported flow.
            prop_assert_eq!(pushes[tag].0, flow);
        }
        prop_assert_eq!(pushed, popped);
        prop_assert!(drr.is_empty());
    }

    /// Durations: for_bytes is monotone in bytes and antitone in rate.
    #[test]
    fn for_bytes_monotonicity(bytes in 1u64..1_000_000, rate in 1.0e3f64..1.0e12) {
        let d = SimDuration::for_bytes(bytes, rate);
        prop_assert!(SimDuration::for_bytes(bytes + 1, rate) >= d);
        prop_assert!(SimDuration::for_bytes(bytes, rate * 2.0) <= d);
        // Never zero for nonzero bytes (ceil semantics).
        prop_assert!(d > SimDuration::ZERO);
    }
}
