//! Reusable queueing/resource models.
//!
//! Two building blocks cover every shared resource in the Farview datapath:
//!
//! * [`BandwidthServer`] — a serialized resource with a fixed byte rate and
//!   an optional fixed per-job overhead. Models one DRAM channel (§4.4:
//!   "each memory channel can provide a certain amount of memory
//!   bandwidth"), the 100 Gbps wire, and the PCIe hop of the commercial
//!   NIC baseline.
//! * [`DrrScheduler`] — deficit round robin across flows. Models the
//!   paper's fair-sharing requirement (§4.3: "out-of-order execution,
//!   along with credit-based flow control and packet based processing,
//!   allows Farview to provide the fair-sharing") and the MMU's
//!   per-region arbiters (§4.4).

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// A serialized resource: jobs are served one at a time, FIFO, each taking
/// `overhead + bytes / rate`.
///
/// The server keeps only `busy_until`, so admission is O(1): callers ask
/// "when would a job of `n` bytes arriving at `now` complete?" and the
/// server advances its horizon. This is exact for FIFO service.
#[derive(Debug, Clone)]
pub struct BandwidthServer {
    bytes_per_sec: f64,
    per_job_overhead: SimDuration,
    busy_until: SimTime,
    jobs_served: u64,
    bytes_served: u64,
    busy_time: SimDuration,
}

impl BandwidthServer {
    /// A server with the given sustained rate and fixed per-job overhead.
    pub fn new(bytes_per_sec: f64, per_job_overhead: SimDuration) -> Self {
        assert!(bytes_per_sec > 0.0 && bytes_per_sec.is_finite());
        BandwidthServer {
            bytes_per_sec,
            per_job_overhead,
            busy_until: SimTime::ZERO,
            jobs_served: 0,
            bytes_served: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    /// Admit a job of `bytes` arriving at `now`; returns its completion
    /// instant. Never completes before `now + overhead + service`.
    pub fn admit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let service = self.per_job_overhead + SimDuration::for_bytes(bytes, self.bytes_per_sec);
        let done = start + service;
        self.busy_until = done;
        self.jobs_served += 1;
        self.bytes_served += bytes;
        self.busy_time += service;
        done
    }

    /// Instant at which the server becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Sustained rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Total jobs admitted.
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Total bytes admitted.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Aggregate busy time (service, not queueing).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Reset the horizon and counters (new episode).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.jobs_served = 0;
        self.bytes_served = 0;
        self.busy_time = SimDuration::ZERO;
    }
}

/// One queued job inside the [`DrrScheduler`].
#[derive(Debug, Clone)]
struct DrrJob<T> {
    cost: u64,
    payload: T,
}

#[derive(Debug, Clone)]
struct DrrFlow<T> {
    deficit: u64,
    queue: VecDeque<DrrJob<T>>,
}

/// Deficit round robin across a fixed set of flows.
///
/// Each flow receives `quantum` units of credit per round; a job is
/// eligible when the flow's accumulated deficit covers its cost (bytes).
/// DRR is the textbook O(1) fair scheduler and matches the paper's
/// packet-based fair-sharing: with equal quanta, concurrent clients share
/// the wire/DRAM proportionally regardless of how greedy any one client's
/// request stream is ("it prevents any malevolent behaviour by any of the
/// users that could lead to a complete system stall", §4.3).
#[derive(Debug, Clone)]
pub struct DrrScheduler<T> {
    quantum: u64,
    flows: Vec<DrrFlow<T>>,
    cursor: usize,
    queued: usize,
}

impl<T> DrrScheduler<T> {
    /// A scheduler over `flows` flows with the given per-round quantum
    /// (in the same cost units as jobs, typically bytes).
    pub fn new(flows: usize, quantum: u64) -> Self {
        assert!(flows > 0, "DRR needs at least one flow");
        assert!(quantum > 0, "DRR quantum must be positive");
        DrrScheduler {
            quantum,
            flows: (0..flows)
                .map(|_| DrrFlow {
                    deficit: 0,
                    queue: VecDeque::new(),
                })
                .collect(),
            cursor: 0,
            queued: 0,
        }
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Total queued jobs across all flows.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Enqueue a job with the given cost on `flow`.
    ///
    /// # Panics
    /// Panics if `flow` is out of range or `cost` exceeds what a single
    /// round can ever grant (cost must be ≤ quantum so a job can always
    /// eventually be served).
    pub fn push(&mut self, flow: usize, cost: u64, payload: T) {
        assert!(flow < self.flows.len(), "unknown DRR flow {flow}");
        assert!(
            cost <= self.quantum,
            "job cost {cost} exceeds quantum {}; it could never be served",
            self.quantum
        );
        self.flows[flow].queue.push_back(DrrJob { cost, payload });
        self.queued += 1;
    }

    /// Remove every job queued on `flow`, returning the payloads in
    /// arrival order. The flow's deficit is forfeited, so a later
    /// occupant of the slot starts with no banked credit. Used when a
    /// flow's owner goes away (disconnect) and its in-flight work must
    /// be drained or re-routed instead of sitting unpoppable.
    ///
    /// # Panics
    /// Panics if `flow` is out of range (flows are fixed at setup).
    pub fn drain_flow(&mut self, flow: usize) -> Vec<T> {
        // fv:allow(panic): documented precondition, same contract as push().
        assert!(flow < self.flows.len(), "unknown DRR flow {flow}");
        // fv:allow(panic): bounds asserted on the line above.
        let f = &mut self.flows[flow];
        f.deficit = 0;
        let drained: Vec<T> = f.queue.drain(..).map(|j| j.payload).collect();
        self.queued -= drained.len();
        drained
    }

    /// Dequeue the next job in DRR order, returning `(flow, payload)`.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        if self.queued == 0 {
            // Drain stale deficits so an idle scheduler does not carry
            // credit into the next busy period (standard DRR behaviour).
            for f in &mut self.flows {
                f.deficit = 0;
            }
            return None;
        }
        let n = self.flows.len();
        // At most two passes are needed: one to grant quanta, one to serve.
        for _ in 0..=(2 * n) {
            let idx = self.cursor;
            let flow = &mut self.flows[idx];
            if let Some(front) = flow.queue.front() {
                if flow.deficit >= front.cost {
                    let job = flow.queue.pop_front().expect("front checked");
                    flow.deficit -= job.cost;
                    self.queued -= 1;
                    if flow.queue.is_empty() {
                        // Idle flows forfeit their deficit.
                        flow.deficit = 0;
                        self.cursor = (idx + 1) % n;
                    }
                    return Some((idx, job.payload));
                }
                // Not enough credit: grant a quantum and move on.
                flow.deficit += self.quantum;
                // Serve immediately now that the quantum covers it (cost is
                // bounded by quantum, so one grant always suffices).
                let job = flow.queue.pop_front().expect("front checked");
                flow.deficit -= job.cost;
                self.queued -= 1;
                self.cursor = (idx + 1) % n;
                return Some((idx, job.payload));
            }
            flow.deficit = 0;
            self.cursor = (idx + 1) % n;
        }
        unreachable!("DRR invariant violated: queued > 0 but nothing served");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_server_serializes_jobs() {
        let mut s = BandwidthServer::new(1e9, SimDuration::from_nanos(10)); // 1 GB/s
        let t0 = SimTime::ZERO;
        // 1000 bytes -> 10 ns overhead + 1000 ns service.
        let d1 = s.admit(t0, 1000);
        assert_eq!(d1.as_nanos(), 1010);
        // Second job arriving at t0 queues behind the first.
        let d2 = s.admit(t0, 1000);
        assert_eq!(d2.as_nanos(), 2020);
        // A job arriving after the horizon starts immediately.
        let d3 = s.admit(SimTime::from_nanos(5000), 500);
        assert_eq!(d3.as_nanos(), 5000 + 10 + 500);
        assert_eq!(s.jobs_served(), 3);
        assert_eq!(s.bytes_served(), 2500);
    }

    #[test]
    fn bandwidth_server_reset() {
        let mut s = BandwidthServer::new(1e9, SimDuration::ZERO);
        s.admit(SimTime::ZERO, 4096);
        s.reset();
        assert_eq!(s.busy_until(), SimTime::ZERO);
        assert_eq!(s.jobs_served(), 0);
    }

    #[test]
    fn drr_is_fair_between_equal_flows() {
        let mut drr = DrrScheduler::new(2, 1024);
        for i in 0..10 {
            drr.push(0, 1024, format!("a{i}"));
        }
        for i in 0..10 {
            drr.push(1, 1024, format!("b{i}"));
        }
        let mut served_by_flow = [0usize; 2];
        let mut order = Vec::new();
        while let Some((flow, job)) = drr.pop() {
            served_by_flow[flow] += 1;
            order.push(job);
        }
        assert_eq!(served_by_flow, [10, 10]);
        // Strict alternation for equal-cost, equal-quantum flows.
        for pair in order.chunks(2) {
            assert_ne!(pair[0].as_bytes()[0], pair[1].as_bytes()[0]);
        }
    }

    #[test]
    fn drr_gives_small_jobs_proportional_share() {
        // Flow 0 sends 512-byte jobs, flow 1 sends 1024-byte jobs. Over a
        // long run flow 0 must get ~2x the job slots (equal byte share).
        let mut drr = DrrScheduler::new(2, 1024);
        for _ in 0..100 {
            drr.push(0, 512, 0u32);
        }
        for _ in 0..100 {
            drr.push(1, 1024, 1u32);
        }
        let mut bytes = [0u64; 2];
        // Serve 60 jobs' worth and compare byte shares.
        for _ in 0..60 {
            let (flow, _) = drr.pop().unwrap();
            bytes[flow] += if flow == 0 { 512 } else { 1024 };
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((0.8..=1.25).contains(&ratio), "byte share skewed: {ratio}");
    }

    #[test]
    fn drr_skips_idle_flows_without_starvation() {
        let mut drr = DrrScheduler::new(4, 1024);
        drr.push(2, 100, "only");
        assert_eq!(drr.pop(), Some((2, "only")));
        assert_eq!(drr.pop(), None);
        assert!(drr.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds quantum")]
    fn drr_rejects_oversized_jobs() {
        let mut drr = DrrScheduler::new(1, 64);
        drr.push(0, 65, ());
    }

    #[test]
    fn drr_drain_flow_removes_jobs_and_deficit() {
        let mut drr = DrrScheduler::new(3, 1024);
        for i in 0..4 {
            drr.push(1, 512, format!("doomed{i}"));
        }
        drr.push(2, 512, "live".to_string());
        // Serve one job so flow 1 has a live deficit balance.
        let (flow, _) = drr.pop().unwrap();
        assert_eq!(flow, 1);

        let drained = drr.drain_flow(1);
        assert_eq!(drained, vec!["doomed1", "doomed2", "doomed3"]);
        assert_eq!(drr.len(), 1, "other flows keep their jobs");
        assert_eq!(drr.pop(), Some((2, "live".to_string())));
        assert!(drr.is_empty());

        // A drained flow starts from zero credit: no burst ahead of a
        // competitor when it is reused.
        drr.push(1, 1024, "a".to_string());
        drr.push(2, 1024, "b".to_string());
        let mut served = [drr.pop().unwrap().0, drr.pop().unwrap().0];
        served.sort_unstable();
        assert_eq!(served, [1, 2]);

        // Draining an empty flow is a no-op.
        assert!(drr.drain_flow(0).is_empty());
    }

    #[test]
    fn drr_idle_flows_forfeit_deficit() {
        let mut drr = DrrScheduler::new(2, 1000);
        drr.push(0, 1000, "x");
        assert!(drr.pop().is_some());
        assert!(drr.pop().is_none());
        // After idling, flow 0 must not have banked credit that lets it
        // burst ahead of flow 1.
        drr.push(0, 1000, "a");
        drr.push(1, 1000, "b");
        let first = drr.pop().unwrap();
        let second = drr.pop().unwrap();
        assert_eq!(
            [first.0, second.0].iter().sum::<usize>(),
            1,
            "each flow served once"
        );
    }
}
