//! Measurement helpers.
//!
//! The paper reports medians over 1000 runs (FPGA) / 10000 runs (CPU,
//! which jitters). The simulator is deterministic, so medians collapse to
//! single values; these helpers exist to aggregate sweeps, to report
//! distribution summaries for randomized workloads, and to let tests make
//! statements such as "p99 queueing delay under six clients stays below X".

use serde::Serialize;

use crate::calib;
use crate::time::SimDuration;

/// Cost model for the client-side scatter–gather merge step of a
/// multi-node fleet query.
///
/// A fleet query fans out to N Farview nodes; each shard's episode runs
/// in the discrete-event engine, and the client then combines the
/// partial results in software. Two merge shapes exist:
///
/// * [`concat`](MergeCostModel::concat) — order-preserving
///   concatenation of shard payloads (selection / projection / regex
///   results under row-range partitioning): a streaming memcpy.
/// * [`hash_merge`](MergeCostModel::hash_merge) — hash-based
///   re-aggregation or dedup (`GROUP BY` partials, `DISTINCT` union):
///   one hash probe/update per partial row plus the streaming copy.
///
/// The defaults come from [`calib`] and follow the same reasoning as the
/// paper's §5.4 client-side software dedup of cuckoo overflow tuples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeCostModel {
    /// Hash probe/update cost per partial row, nanoseconds.
    pub row_ns: u64,
    /// Streaming copy bandwidth for payload bytes, bytes/second.
    pub concat_bw: f64,
}

impl Default for MergeCostModel {
    fn default() -> Self {
        MergeCostModel {
            row_ns: calib::CLIENT_MERGE_ROW_NS,
            concat_bw: calib::CLIENT_CONCAT_BW,
        }
    }
}

impl MergeCostModel {
    /// Time to concatenate `bytes` of shard payloads.
    pub fn concat(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, self.concat_bw)
    }

    /// Time to hash-merge `rows` partial rows spanning `bytes` of
    /// payload.
    pub fn hash_merge(&self, rows: u64, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(rows * self.row_ns) + self.concat(bytes)
    }
}

/// Streaming mean/min/max/variance (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold in a duration, in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A simple exact-quantile container: stores all samples, sorts on query.
///
/// Sample counts in this codebase are small (thousands), so exactness
/// beats the complexity of a streaming sketch.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Histogram {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Add one sample.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "histogram sample must be finite");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Add one duration sample, in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Exact quantile by the nearest-rank method; `q` in `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Mean of all samples.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Known sample std dev of this classic dataset is ~2.138.
        assert!((s.std_dev() - 2.1380899).abs() < 1e-6);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_empty_is_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(f64::from(i));
        }
        assert_eq!(h.median(), Some(50.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.mean(), Some(50.5));
    }

    #[test]
    fn histogram_unsorted_input() {
        let mut h = Histogram::new();
        for x in [9.0, 1.0, 5.0] {
            h.record(x);
        }
        assert_eq!(h.median(), Some(5.0));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn merge_cost_model_scales() {
        let m = MergeCostModel::default();
        assert_eq!(m.concat(0), SimDuration::ZERO);
        assert!(m.concat(1 << 20) > m.concat(1 << 10));
        // Hash merge = per-row cost on top of the streaming copy.
        let rows_cost = m.hash_merge(1000, 0);
        assert_eq!(
            rows_cost,
            SimDuration::from_nanos(1000 * calib::CLIENT_MERGE_ROW_NS)
        );
        assert!(m.hash_merge(1000, 4096) > rows_cost);
    }

    #[test]
    fn histogram_duration_units_are_micros() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_micros(250));
        assert_eq!(h.median(), Some(250.0));
    }
}
