//! Actor-model discrete-event engine.
//!
//! The Farview datapath (Figure 2 of the paper) is a pipeline of
//! independently clocked components — network stack, dynamic regions, MMU,
//! DRAM channels — connected by queues. We model each component as an
//! [`Actor`] that receives typed messages at simulated instants and reacts
//! by sending further messages after explicit delays. A central
//! [`Simulation`] owns the actors and the event queue.
//!
//! Determinism: events are ordered by `(time, sequence number)` where the
//! sequence number is assigned at scheduling time, so two events scheduled
//! for the same instant are always delivered in scheduling order,
//! independent of hash/heap internals. The engine is single-threaded; a
//! whole query episode (a few thousand events) runs in microseconds of
//! wall time.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifies an actor inside a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(u32);

impl ActorId {
    /// Raw index (useful for logging).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simulation component.
///
/// `M` is the message alphabet of the whole simulation, defined by the
/// embedding crate (`farview-core` defines one for the Farview datapath).
/// The `Any` supertrait allows the owner to downcast actors back to their
/// concrete type after (or during pauses of) a run, e.g. to read out
/// statistics — see [`Simulation::actor`].
pub trait Actor<M>: Any {
    /// Handle one message delivered at `ctx.now()`.
    fn on_message(&mut self, msg: M, ctx: &mut Context<'_, M>);
}

/// Scheduling interface handed to an actor while it handles a message.
pub struct Context<'a, M> {
    now: SimTime,
    me: ActorId,
    outbox: &'a mut Vec<(SimTime, ActorId, M)>,
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently executing.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Send `msg` to `to`, delivered `delay` from now.
    pub fn send(&mut self, to: ActorId, delay: SimDuration, msg: M) {
        self.outbox.push((self.now + delay, to, msg));
    }

    /// Send `msg` to `to` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past; events must never travel backwards.
    pub fn send_at(&mut self, to: ActorId, at: SimTime, msg: M) {
        assert!(at >= self.now, "send_at into the past: {at} < {}", self.now);
        self.outbox.push((at, to, msg));
    }

    /// Send `msg` to ourselves after `delay` (timer pattern).
    pub fn send_self(&mut self, delay: SimDuration, msg: M) {
        let me = self.me;
        self.send(me, delay, msg);
    }
}

#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    to: ActorId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event engine: owns actors, the event queue, and the clock.
pub struct Simulation<M> {
    now: SimTime,
    seq: u64,
    delivered: u64,
    actors: Vec<Box<dyn Actor<M>>>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    outbox: Vec<(SimTime, ActorId, M)>,
}

impl<M: 'static> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: 'static> Simulation<M> {
    /// An empty simulation at t = 0.
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            delivered: 0,
            actors: Vec::new(),
            queue: BinaryHeap::new(),
            outbox: Vec::new(),
        }
    }

    /// Register an actor, returning its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(u32::try_from(self.actors.len()).expect("too many actors"));
        self.actors.push(actor);
        id
    }

    /// Current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of actors registered.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Inject a message from outside the simulation (e.g. a client request
    /// at t = now + delay).
    pub fn inject(&mut self, to: ActorId, delay: SimDuration, msg: M) {
        let at = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, to, msg }));
    }

    /// Deliver events until the queue is empty.
    ///
    /// `max_events` is a runaway guard: a simulation that schedules more
    /// events than that is considered livelocked.
    ///
    /// # Panics
    /// Panics if `max_events` is exceeded or a message addresses an
    /// unregistered actor.
    pub fn run_to_quiescence(&mut self, max_events: u64) {
        let mut budget = max_events;
        while let Some(Reverse(ev)) = self.queue.pop() {
            assert!(
                budget > 0,
                "simulation exceeded {max_events} events; livelock?"
            );
            budget -= 1;
            debug_assert!(ev.at >= self.now, "event queue produced time travel");
            self.now = ev.at;
            self.delivered += 1;

            let idx = ev.to.index();
            let actor = self
                .actors
                .get_mut(idx)
                .unwrap_or_else(|| panic!("message to unknown actor #{idx}"));
            let mut ctx = Context {
                now: self.now,
                me: ev.to,
                outbox: &mut self.outbox,
            };
            actor.on_message(ev.msg, &mut ctx);

            for (at, to, msg) in self.outbox.drain(..) {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Reverse(Scheduled { at, seq, to, msg }));
            }
        }
    }

    /// Borrow an actor back as its concrete type (post-run inspection).
    ///
    /// Returns `None` if the id is unknown or the type does not match.
    pub fn actor<T: Actor<M>>(&self, id: ActorId) -> Option<&T> {
        let actor = self.actors.get(id.index())?;
        (actor.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrow an actor back as its concrete type.
    pub fn actor_mut<T: Actor<M>>(&mut self, id: ActorId) -> Option<&mut T> {
        let actor = self.actors.get_mut(id.index())?;
        (actor.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    /// Replies to Ping with Pong after a fixed service time.
    struct Echo {
        service: SimDuration,
        reply_to: ActorId,
        served: u32,
    }

    impl Actor<Msg> for Echo {
        fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Ping(n) = msg {
                self.served += 1;
                ctx.send(self.reply_to, self.service, Msg::Pong(n));
            }
        }
    }

    /// Records Pong arrival times.
    #[derive(Default)]
    struct Sink {
        arrivals: Vec<(SimTime, u32)>,
    }

    impl Actor<Msg> for Sink {
        fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Pong(n) = msg {
                self.arrivals.push((ctx.now(), n));
            }
        }
    }

    #[test]
    fn ping_pong_timing() {
        let mut sim = Simulation::new();
        let sink = sim.add_actor(Box::new(Sink::default()));
        let echo = sim.add_actor(Box::new(Echo {
            service: SimDuration::from_nanos(100),
            reply_to: sink,
            served: 0,
        }));

        sim.inject(echo, SimDuration::from_nanos(10), Msg::Ping(1));
        sim.inject(echo, SimDuration::from_nanos(10), Msg::Ping(2));
        sim.run_to_quiescence(1_000);

        assert_eq!(sim.now(), SimTime::from_nanos(110));
        let sink = sim.actor::<Sink>(sink).unwrap();
        // Same-time events preserve injection order.
        assert_eq!(
            sink.arrivals,
            vec![(SimTime::from_nanos(110), 1), (SimTime::from_nanos(110), 2)]
        );
        let echo = sim.actor::<Echo>(echo).unwrap();
        assert_eq!(echo.served, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulation::new();
            let sink = sim.add_actor(Box::new(Sink::default()));
            let echo = sim.add_actor(Box::new(Echo {
                service: SimDuration::from_nanos(7),
                reply_to: sink,
                served: 0,
            }));
            for i in 0..64 {
                sim.inject(
                    echo,
                    SimDuration::from_nanos(u64::from(i % 5)),
                    Msg::Ping(i),
                );
            }
            sim.run_to_quiescence(10_000);
            sim.actor::<Sink>(sink).unwrap().arrivals.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let mut sim: Simulation<Msg> = Simulation::new();
        let sink = sim.add_actor(Box::new(Sink::default()));
        assert!(sim.actor::<Echo>(sink).is_none());
        assert!(sim.actor::<Sink>(sink).is_some());
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn runaway_guard_fires() {
        /// Sends itself a message forever.
        struct Loopy;
        impl Actor<Msg> for Loopy {
            fn on_message(&mut self, _msg: Msg, ctx: &mut Context<'_, Msg>) {
                ctx.send_self(SimDuration::from_nanos(1), Msg::Ping(0));
            }
        }
        let mut sim = Simulation::new();
        let id = sim.add_actor(Box::new(Loopy));
        sim.inject(id, SimDuration::ZERO, Msg::Ping(0));
        sim.run_to_quiescence(100);
    }

    #[test]
    fn timers_via_send_self() {
        struct Timer {
            fires: Vec<SimTime>,
        }
        impl Actor<Msg> for Timer {
            fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
                if let Msg::Ping(n) = msg {
                    self.fires.push(ctx.now());
                    if n > 0 {
                        ctx.send_self(SimDuration::from_nanos(50), Msg::Ping(n - 1));
                    }
                }
            }
        }
        let mut sim = Simulation::new();
        let id = sim.add_actor(Box::new(Timer { fires: vec![] }));
        sim.inject(id, SimDuration::ZERO, Msg::Ping(3));
        sim.run_to_quiescence(100);
        let t = sim.actor::<Timer>(id).unwrap();
        assert_eq!(
            t.fires,
            vec![
                SimTime::from_nanos(0),
                SimTime::from_nanos(50),
                SimTime::from_nanos(100),
                SimTime::from_nanos(150)
            ]
        );
    }
}
