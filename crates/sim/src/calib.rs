//! Hardware calibration constants.
//!
//! Every timing constant used anywhere in the reproduction lives here,
//! with the sentence of the paper (§ references are to the CIDR'22 paper)
//! or public datasheet it is calibrated against. The experiments in
//! `fv-bench` reproduce *shapes* (who wins, by what factor, where
//! crossovers fall); absolute values are set to land in the same ballpark
//! as the paper's plots but are not expected to match a real XACC-cluster
//! deployment.
//!
//! Constants are grouped per subsystem. Rates are `f64` bytes/second,
//! latencies are [`SimDuration`]s, counts are integers.

use crate::time::SimDuration;

// ---------------------------------------------------------------------------
// Network (paper §4.3, §6.2, Figure 6)
// ---------------------------------------------------------------------------

/// 100 Gbps line rate ("The smart NIC supports RoCE v2 at 100 Gbps", §1)
/// expressed in bytes per second.
pub const NET_LINE_RATE: f64 = 12.5e9;

/// Effective Farview read throughput ceiling: "Reading from local on-board
/// FPGA memory peaks at 12 GBps, indicating that the network is the main
/// bottleneck" (§6.2).
pub const FV_NET_PEAK: f64 = 12.0e9;

/// Commercial-NIC (ConnectX-5) throughput ceiling: "throughput peaks at
/// ~11 GBps because it is bound by the PCIe bus bandwidth" (§6.2).
pub const RNIC_PCIE_PEAK: f64 = 11.0e9;

/// Network MTU/packet size: "We set the packet size to 1 kB" (§6.2).
pub const PACKET_BYTES: u64 = 1024;

/// One-way wire propagation (host -> switch -> host) on the XACC cluster.
/// Not quoted directly; chosen so that base RTTs land at the 2–3 µs level
/// of Figure 6(b).
pub const WIRE_ONE_WAY: SimDuration = SimDuration::from_nanos(500);

/// Client-side posting overhead for a one-sided verb (doorbell + WQE).
pub const CLIENT_POST: SimDuration = SimDuration::from_nanos(300);

/// Incremental client-side cost of each additional WQE in a
/// doorbell-batched submission. The doorbell (MMIO write) is rung once
/// for the whole batch — the FaRM-style batching discipline — so WQE
/// `i` of a batch issues at `CLIENT_POST + i × DOORBELL_WQE` instead of
/// paying [`CLIENT_POST`] again. Calibrated at a cache-line DMA fetch of
/// one WQE by the NIC, an order of magnitude below the full post.
pub const DOORBELL_WQE: SimDuration = SimDuration::from_nanos(30);

/// Client-side completion handling (CQE poll to "result visible").
pub const CLIENT_COMPLETE: SimDuration = SimDuration::from_nanos(200);

/// Farview FPGA network-stack request parse/route time. The network stack
/// runs at 250 MHz (§4.1), so per-request processing is slower than the
/// RNIC ASIC: this is why "RNIC offers lower response times for smaller
/// transfer sizes" (§6.2).
pub const FV_REQ_PROC: SimDuration = SimDuration::from_nanos(700);

/// Farview per-packet egress processing. Deep pipelining makes this small:
/// "for higher transfer sizes the multi-packet processing and page
/// handling in the FPGA network stack performs better" (§6.2).
pub const FV_PER_PACKET: SimDuration = SimDuration::from_nanos(60);

/// RNIC baseline request processing ("specialized circuitry running at a
/// higher clock rate ... provides better performance for small packets",
/// §6.2).
pub const RNIC_REQ_PROC: SimDuration = SimDuration::from_nanos(100);

/// PCIe DMA latency paid by the RNIC baseline on the first access of every
/// request: "The difference during reads is ~1 us, consistent with PCIe
/// latencies" (§6.2, citing Neugebauer et al.).
pub const RNIC_PCIE_LATENCY: SimDuration = SimDuration::from_nanos(700);

/// RNIC per-packet processing (PCIe descriptor + page handling per MTU).
/// Larger than [`FV_PER_PACKET`] so the response-time crossover of
/// Figure 6(b) falls between 1 kB and 8 kB.
pub const RNIC_PER_PACKET: SimDuration = SimDuration::from_nanos(190);

/// Serial per-request occupancy of the Farview network stack when many
/// requests are in flight (throughput experiment, Figure 6(a)).
pub const FV_REQ_OCCUPANCY: SimDuration = SimDuration::from_nanos(250);

/// Per-packet engine occupancy under pipelined load (Farview). Much
/// smaller than [`FV_PER_PACKET`] latency: multiple parallel engines and
/// deep pipelining overlap packet handling.
pub const FV_PER_PACKET_PIPELINED: SimDuration = SimDuration::from_nanos(20);

/// Per-packet engine occupancy under pipelined load (RNIC): descriptor
/// and PCIe page handling amortize less well, which is what lets Farview
/// overtake at saturation despite losing below 4 kB (§6.2).
pub const RNIC_PER_PACKET_PIPELINED: SimDuration = SimDuration::from_nanos(60);

/// Serial per-request occupancy of the RNIC under pipelined load. Lower
/// than Farview's (ASIC clock), which is why "below 4 kB ... RNIC achieves
/// better throughput" (§6.2).
pub const RNIC_REQ_OCCUPANCY: SimDuration = SimDuration::from_nanos(130);

/// Default credit budget per queue pair (credit-based flow control, §4.3),
/// in packets.
pub const QP_CREDITS: u32 = 32;

// ---------------------------------------------------------------------------
// Memory stack (paper §4.4, Figure 2)
// ---------------------------------------------------------------------------

/// Per-channel DRAM bandwidth: "a maximum theoretical bandwidth of
/// 18 GBps per channel" (§4.4 / Figure 2).
pub const DRAM_CHANNEL_BW: f64 = 18.0e9;

/// Number of DRAM channels used in the evaluation: "In our tests we used
/// two of the four available channels" (§6.1).
pub const DEFAULT_CHANNELS: usize = 2;

/// Memory-stack clock: "300 MHz (memory stack)" (§4.1).
pub const MEM_CLOCK_HZ: f64 = 300.0e6;

/// Burst size used by the region <-> MMU <-> channel datapath. The paper
/// does not quote one; 4 KiB (= one stripe) balances event count against
/// queueing fidelity, and the `ablation_striping` bench bounds its
/// influence (channel-count effects dwarf burst-size effects).
pub const MEM_BURST_BYTES: u64 = 4096;

/// Per-burst channel overhead (softcore controller command handling,
/// row activation amortized over a burst).
pub const DRAM_BURST_OVERHEAD: SimDuration = SimDuration::from_nanos(40);

/// First-access latency through MMU + controller before data flows.
pub const DRAM_ACCESS_LATENCY: SimDuration = SimDuration::from_nanos(350);

/// MMU page size: "Farview's MMU supports naturally aligned 2 MB pages"
/// (§4.4).
pub const PAGE_BYTES: u64 = 2 * 1024 * 1024;

/// Stripe unit for channel interleaving ("allocating memory in a striping
/// pattern across all available memory channels", §4.4). Not quoted;
/// one burst per channel round.
pub const STRIPE_BYTES: u64 = 4096;

/// TLB capacity in entries. "Farview's TLB holds all virtual-to-physical
/// address mappings for the dynamic regions" (§4.4): with 2 MB pages and
/// 64 GB of board DRAM that bounds at 32 K entries; 4096 BRAM entries is
/// plenty for the evaluation's footprints while letting tests exercise
/// misses.
pub const TLB_ENTRIES: usize = 4096;

/// TLB miss penalty: a page-table walk in on-chip memory (a few 300 MHz
/// cycles).
pub const TLB_MISS_PENALTY: SimDuration = SimDuration::from_nanos(20);

/// Per-tuple cost of a smart-addressing random read (one narrow request
/// per tuple instead of a streaming burst; row activations stop
/// amortizing). Calibrated so Figure 7's ordering holds: FV-SA sits
/// *between* whole-row reads of 256 B tuples (~16 ns/tuple over two
/// striped channels) and 512 B tuples (~32 ns/tuple) — smart addressing
/// only pays off once rows are wide (§5.2, §6.3).
pub const SMART_ADDR_TUPLE: SimDuration = SimDuration::from_nanos(22);

// ---------------------------------------------------------------------------
// Operator stack / FPGA fabric (paper §4.1, §4.5, §5)
// ---------------------------------------------------------------------------

/// Operator-stack clock: "The frequencies of the components in Farview
/// range between 250 MHz (network stack, operator stack) and 300 MHz
/// (memory stack)" (§4.1).
pub const OP_CLOCK_HZ: f64 = 250.0e6;

/// Datapath beat width: "wide buses (at least 512 bit)" (§4.1) = 64 B.
pub const BEAT_BYTES: u64 = 64;

/// Non-vectorized pipeline throughput: one 64 B beat per 250 MHz cycle,
/// i.e. 16 GB/s. At 25 % selectivity "the bottleneck shifts to the
/// bandwidth of a single query pipeline" (§6.4) — this is that bandwidth.
pub const PIPELINE_RATE: f64 = BEAT_BYTES as f64 * OP_CLOCK_HZ;

/// Pipeline fill latency per operator stage (deep pipelining; "adding
/// insignificant latency to baseline network overheads", §1).
pub const OP_FILL_CYCLES: u64 = 24;

/// Cycles per hash-table entry when the group-by operator flushes its
/// result queue at end of aggregation (§5.4).
pub const GROUP_FLUSH_CYCLES_PER_ENTRY: u64 = 2;

/// Number of dynamic regions in the evaluated configuration: "We use six
/// dynamic regions in our experiments" (§6.1).
pub const DEFAULT_REGIONS: usize = 6;

/// Partial-reconfiguration time for swapping an operator pipeline into a
/// dynamic region: "on the order of milliseconds" (§3.2).
pub const RECONFIG_TIME: SimDuration = SimDuration::from_millis(4);

// ---------------------------------------------------------------------------
// CPU baselines (paper §6.1: Xeon Gold 6248 / 6154, cold buffer caches)
// ---------------------------------------------------------------------------

/// Effective single-thread DRAM streaming *read* bandwidth for the CPU
/// baselines. Deliberately below STREAM peak: the paper's baselines run
/// with cold caches and materialize through the cache hierarchy ("LCPU
/// pays a significant price, because it has to read the data from DRAM and
/// not from cache", §6.4).
pub const CPU_READ_BW: f64 = 7.0e9;

/// Effective single-thread DRAM streaming *write* bandwidth (write
/// allocate + eviction traffic makes writes costlier than reads).
pub const CPU_WRITE_BW: f64 = 5.0e9;

/// Socket-aggregate DRAM bandwidth, used when multiple baseline processes
/// compete (Figure 12): "Both CPU baselines compete for access both to the
/// DRAM and the shared caches" (§6.8).
pub const CPU_SOCKET_BW: f64 = 19.0e9;

/// Multiplicative slowdown from cache/DRAM interference when several
/// processes run concurrently (Figure 12).
pub const CPU_INTERFERENCE_FACTOR: f64 = 1.35;

/// Fixed per-query software overhead of the local baseline (buffer-cache
/// lookup, thread wakeup, measurement harness).
pub const LCPU_FIXED: SimDuration = SimDuration::from_micros(14);

/// Extra fixed overhead of the remote (two-sided RDMA) baseline: RPC
/// send/receive handling on both CPUs on top of [`LCPU_FIXED`].
pub const RCPU_RPC_OVERHEAD: SimDuration = SimDuration::from_micros(8);

/// Per-tuple CPU cost of evaluating a selection predicate pair (branchy
/// scalar code over row data).
pub const CPU_PREDICATE_NS: u64 = 3;

/// Per-tuple CPU cost of a hash-table *insert* on the baseline
/// (parallel-hashmap-style table, amortized resize + cache misses; §6.5
/// attributes baseline slowdown to "memory resizing of the hash table as
/// more elements are added" and hashing speed).
pub const CPU_HASH_INSERT_NS: u64 = 62;

/// Per-tuple CPU cost of a hash lookup that hits (group-by on a small,
/// cache-resident group set).
pub const CPU_HASH_HIT_NS: u64 = 18;

/// CPU regex throughput in ns per byte (RE2-like DFA, cold data: ~1 GB/s).
pub const CPU_REGEX_NS_PER_BYTE: f64 = 1.0;

/// CPU AES-128-CTR throughput (Crypto++-like, cold data), bytes/second.
pub const CPU_AES_BW: f64 = 2.0e9;

/// CPU-side software dedup cost per overflow tuple shipped back by the
/// FPGA cuckoo tables (§5.4: collisions "sent to the client to be
/// deduplicated in software").
pub const CPU_DEDUP_NS: u64 = 60;

/// Client-side scatter–gather merge: per-row cost of the hash-based
/// re-aggregation / dedup pass that combines partial results from a
/// fleet of Farview nodes. Same mechanism as the §5.4 software dedup of
/// overflow tuples, but the partial rows arrive sorted by shard and warm
/// in cache (they were just reassembled from the wire), so the per-row
/// cost sits between the hot hash-hit (`CPU_HASH_HIT_NS`) and the cold
/// insert (`CPU_HASH_INSERT_NS`).
pub const CLIENT_MERGE_ROW_NS: u64 = 40;

/// Client-side memcpy bandwidth for concatenating shard payloads into
/// one result buffer (streaming copy of data just written to client
/// memory by the NIC; DDR4 single-core streaming rate).
pub const CLIENT_CONCAT_BW: f64 = 12.0e9;

/// Rebalance coordinator: fixed cost per (source → destination) copy
/// flow of a shard-move plan — verb setup, range bookkeeping, and the
/// completion handling of one copy stream. Same order as an RPC issue
/// path on the client CPU.
pub const MIGRATION_MOVE_FIXED: SimDuration = SimDuration::from_micros(2);

/// Helper: the serialized-transfer time of `bytes` at `rate`, as used all
/// over the baseline cost models.
pub fn transfer(bytes: u64, rate: f64) -> SimDuration {
    SimDuration::for_bytes(bytes, rate)
}

/// Helper: `n` cycles of the operator-stack clock.
pub fn op_cycles(n: u64) -> SimDuration {
    SimDuration::for_cycles(n, OP_CLOCK_HZ)
}

/// Helper: `n` cycles of the memory-stack clock.
pub fn mem_cycles(n: u64) -> SimDuration {
    SimDuration::for_cycles(n, MEM_CLOCK_HZ)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fixed response-time components must preserve the paper's
    /// Figure 6(b) shape: RNIC wins for a single small packet, Farview
    /// wins by ~20 % at 8 kB.
    #[test]
    fn figure6b_shape_holds_analytically() {
        let fv_fixed = CLIENT_POST
            + WIRE_ONE_WAY
            + FV_REQ_PROC
            + DRAM_ACCESS_LATENCY
            + WIRE_ONE_WAY
            + CLIENT_COMPLETE;
        let rnic_fixed = CLIENT_POST
            + WIRE_ONE_WAY
            + RNIC_REQ_PROC
            + RNIC_PCIE_LATENCY
            + WIRE_ONE_WAY
            + CLIENT_COMPLETE;

        let response = |fixed: SimDuration, per_pkt: SimDuration, peak: f64, bytes: u64| {
            let pkts = bytes.div_ceil(PACKET_BYTES);
            fixed + per_pkt * pkts + transfer(bytes, peak)
        };

        // 512 B: RNIC must be faster.
        let fv_small = response(fv_fixed, FV_PER_PACKET, FV_NET_PEAK, 512);
        let rnic_small = response(rnic_fixed, RNIC_PER_PACKET, RNIC_PCIE_PEAK, 512);
        assert!(
            rnic_small < fv_small,
            "RNIC must win small transfers: {rnic_small} vs {fv_small}"
        );

        // 8 kB: Farview must be faster by a sizeable margin.
        let fv_big = response(fv_fixed, FV_PER_PACKET, FV_NET_PEAK, 8192);
        let rnic_big = response(rnic_fixed, RNIC_PER_PACKET, RNIC_PCIE_PEAK, 8192);
        assert!(
            fv_big < rnic_big,
            "FV must win 8 kB: {fv_big} vs {rnic_big}"
        );
        let ratio = rnic_big.as_nanos() as f64 / fv_big.as_nanos() as f64;
        assert!(ratio > 1.10, "FV advantage at 8 kB too small: {ratio:.3}");
    }

    /// Figure 6(a): pipelined throughput must cross over — RNIC better
    /// below 4 kB, Farview better at saturation.
    #[test]
    fn figure6a_shape_holds_analytically() {
        let tput = |occ: SimDuration, peak: f64, bytes: u64| {
            let per_req = occ + transfer(bytes, peak);
            bytes as f64 / per_req.as_secs_f64()
        };
        let small = 1024;
        assert!(
            tput(RNIC_REQ_OCCUPANCY, RNIC_PCIE_PEAK, small)
                > tput(FV_REQ_OCCUPANCY, FV_NET_PEAK, small),
            "RNIC must win small-transfer throughput"
        );
        let big = 32 * 1024;
        assert!(
            tput(FV_REQ_OCCUPANCY, FV_NET_PEAK, big)
                > tput(RNIC_REQ_OCCUPANCY, RNIC_PCIE_PEAK, big),
            "FV must win at saturation"
        );
    }

    /// Pipeline (non-vectorized) must be slower than two striped channels
    /// but faster than one — this is what makes vectorization matter at
    /// 25 % selectivity (§6.4) without mattering at 100 %.
    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants *are* the test subject
    fn pipeline_rate_sits_between_one_and_two_channels() {
        assert!(PIPELINE_RATE < DEFAULT_CHANNELS as f64 * DRAM_CHANNEL_BW);
        assert!(PIPELINE_RATE > DRAM_CHANNEL_BW * 0.8);
        assert!((PIPELINE_RATE - 16.0e9).abs() < 1e6);
    }

    /// CPU hash insert cost must make a 16 K-tuple distinct take ~1 ms
    /// (Figure 9's baselines climb towards 1.5 ms at 1 MB).
    #[test]
    fn hash_costs_land_in_figure9_ballpark() {
        let tuples = 16_384u64; // 1 MB of 64 B tuples
        let hash_time = SimDuration::from_nanos(tuples * CPU_HASH_INSERT_NS);
        let micros = hash_time.as_micros_f64();
        assert!(
            (500.0..2_000.0).contains(&micros),
            "distinct hash cost off the figure: {micros} us"
        );
    }

    /// Sanity: transfer helper at line rate.
    #[test]
    fn transfer_helper() {
        assert_eq!(transfer(12_500, NET_LINE_RATE).as_nanos(), 1_000);
        assert_eq!(op_cycles(1).as_nanos(), 4);
        assert_eq!(mem_cycles(3).as_nanos(), 10);
    }
}
