//! Plan-level cost hooks for the query planner.
//!
//! The discrete-event engine gives the *measured* response time of a
//! query; a planner choosing between physical alternatives (stream whole
//! rows vs. smart-addressing gathers, shard fan-out vs. one node) needs
//! cheap *estimates* before anything runs. [`PlanCostModel`] provides
//! those estimates from the same [`calib`] constants the event engine is
//! built on, so an estimate and a simulation never disagree about which
//! resource is the bottleneck — only about queueing detail.
//!
//! Nothing here knows what a query plan *is*: the hooks speak bytes,
//! tuples and shards, and `farview-core::plan` composes them.

use crate::calib;
use crate::stats::MergeCostModel;
use crate::time::SimDuration;

/// Calibrated estimator for the coarse cost of one datapath episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCostModel {
    /// Active DRAM channels on the node (stripe width).
    pub channels: usize,
    /// Client-side merge model for scatter–gather targets.
    pub merge: MergeCostModel,
}

impl Default for PlanCostModel {
    fn default() -> Self {
        PlanCostModel {
            channels: calib::DEFAULT_CHANNELS,
            merge: MergeCostModel::default(),
        }
    }
}

impl PlanCostModel {
    /// A model for a node with `channels` active DRAM channels.
    pub fn new(channels: usize) -> Self {
        PlanCostModel {
            channels: channels.max(1),
            ..PlanCostModel::default()
        }
    }

    /// Fixed per-verb overhead: posting, the request's wire crossing and
    /// parse, the first DRAM access, the response's wire crossing and
    /// client completion handling.
    pub fn request_fixed(&self) -> SimDuration {
        calib::CLIENT_POST
            + calib::WIRE_ONE_WAY
            + calib::FV_REQ_PROC
            + calib::DRAM_ACCESS_LATENCY
            + calib::WIRE_ONE_WAY
            + calib::CLIENT_COMPLETE
    }

    /// Streaming a whole-row scan of `bytes` out of DRAM and through the
    /// region's operator pipeline: bounded by the striped channels or the
    /// pipeline beat rate, whichever saturates first.
    pub fn stream_scan(&self, bytes: u64) -> SimDuration {
        let bw = (self.channels as f64 * calib::DRAM_CHANNEL_BW).min(calib::PIPELINE_RATE);
        calib::transfer(bytes, bw)
    }

    /// Gathering `tuples` narrow smart-addressing reads (one serialized
    /// request per tuple; row activations stop amortizing).
    pub fn smart_gather(&self, tuples: u64) -> SimDuration {
        calib::SMART_ADDR_TUPLE * tuples
    }

    /// Result payload of `bytes` crossing the wire, per-packet handling
    /// included (every response ends in a FIN packet, hence the `+ 1`).
    pub fn wire(&self, bytes: u64) -> SimDuration {
        calib::transfer(bytes, calib::FV_NET_PEAK)
            + calib::FV_PER_PACKET * (bytes / calib::PACKET_BYTES + 1)
    }

    /// Client-side concatenation of `bytes` of shard payloads.
    pub fn merge_concat(&self, bytes: u64) -> SimDuration {
        self.merge.concat(bytes)
    }

    /// Client-side hash merge of `rows` partial rows spanning `bytes`.
    pub fn merge_hash(&self, rows: u64, bytes: u64) -> SimDuration {
        self.merge.hash_merge(rows, bytes)
    }

    /// One single-node episode that reads `in_bytes` (streamed, or
    /// gathered per tuple when `gather_tuples` is set) and ships
    /// `out_bytes` back: fixed costs plus the slower of the memory and
    /// wire sides (the datapath overlaps them).
    pub fn episode(
        &self,
        in_bytes: u64,
        gather_tuples: Option<u64>,
        out_bytes: u64,
    ) -> SimDuration {
        let memory = match gather_tuples {
            Some(t) => self.smart_gather(t),
            None => self.stream_scan(in_bytes),
        };
        self.request_fixed() + memory.max(self.wire(out_bytes))
    }

    /// A scatter–gather fan-out: the slowest shard's episode plus the
    /// client-side merge. Shards are independent nodes, so the per-shard
    /// episode shrinks with the fan-out while the merge scans every
    /// partial row.
    pub fn fan_out(&self, slowest_shard: SimDuration, merge: SimDuration) -> SimDuration {
        slowest_shard + merge
    }

    /// Client-observed response time of a replicated shard read: the
    /// datapath executes **once** (on one surviving replica, measuring
    /// `executed`), and each of the remaining `surviving_replicas − 1`
    /// standbys is *modeled* instead of re-run. Every replica holds a
    /// byte-identical shard image on an identically calibrated node, so
    /// each standby's modeled response equals the executed measurement,
    /// and the race's winning time — the minimum over all surviving
    /// replicas — is the executed time itself. This replaces the
    /// execute-every-replica race with identical bytes and `r×` less
    /// wall-clock work.
    pub fn replica_race(&self, executed: SimDuration, surviving_replicas: usize) -> SimDuration {
        assert!(surviving_replicas >= 1, "a race needs a surviving replica");
        // min(executed, model(standby), ...) with model(standby) =
        // executed for identical replicas.
        executed
    }
}

/// Calibrated cost of the rebalance coordinator's client-side work:
/// routing the moved rows out of source-copy payloads into destination
/// shard images. The *data movement* itself is costed by real episodes
/// (source reads through the net stack, destination writes through the
/// write datapath); this model covers only the coordinator in between,
/// so rebalance time is reported honestly instead of treating the
/// reshuffle as free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCostModel {
    /// Fixed cost per (source → destination) copy flow.
    pub per_move: SimDuration,
    /// Streaming bandwidth for routing moved bytes between buffers.
    pub shuffle_bw: f64,
}

impl Default for MigrationCostModel {
    fn default() -> Self {
        MigrationCostModel {
            per_move: calib::MIGRATION_MOVE_FIXED,
            shuffle_bw: calib::CLIENT_CONCAT_BW,
        }
    }
}

impl MigrationCostModel {
    /// Coordinator time to route `bytes` of moved rows across `moves`
    /// copy flows.
    pub fn shuffle(&self, moves: u64, bytes: u64) -> SimDuration {
        self.per_move * moves + calib::transfer(bytes, self.shuffle_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_beats_gather_for_narrow_rows_only() {
        let m = PlanCostModel::default();
        let tuples = 4096u64;
        // 64 B rows: streaming is far cheaper than per-tuple gathers.
        assert!(m.stream_scan(tuples * 64) < m.smart_gather(tuples));
        // 512 B rows: the gather wins (Figure 7's crossover).
        assert!(m.smart_gather(tuples) < m.stream_scan(tuples * 512));
    }

    #[test]
    fn episode_overlaps_memory_and_wire() {
        let m = PlanCostModel::default();
        let small = m.episode(4096, None, 4096);
        let big = m.episode(1 << 20, None, 1 << 20);
        assert!(big > small);
        // The overlapped estimate is below the serial sum.
        let serial = m.request_fixed() + m.stream_scan(1 << 20) + m.wire(1 << 20);
        assert!(big < serial);
    }

    #[test]
    fn fan_out_adds_the_merge() {
        let m = PlanCostModel::default();
        let shard = m.episode(64 << 10, None, 64 << 10);
        assert_eq!(
            m.fan_out(shard, m.merge_concat(256 << 10)),
            shard + m.merge_concat(256 << 10)
        );
    }

    #[test]
    fn shuffle_scales_with_moves_and_bytes() {
        let m = MigrationCostModel::default();
        assert_eq!(m.shuffle(0, 0), SimDuration::ZERO);
        assert_eq!(m.shuffle(3, 0), calib::MIGRATION_MOVE_FIXED * 3);
        assert!(m.shuffle(1, 1 << 20) > m.shuffle(1, 1 << 10));
    }
}
