//! Simulated time.
//!
//! All simulated timing in the reproduction is expressed in integer
//! nanoseconds. One nanosecond is fine enough for every effect the paper
//! measures (the fastest clock in the system is the 300 MHz memory stack,
//! i.e. 3.33 ns per cycle; wire time for one 64-byte beat at 100 Gbps is
//! 5.12 ns) while keeping arithmetic exact and the event order
//! deterministic — two floating-point timestamps that differ in the 17th
//! digit must never reorder events between runs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds (the unit of every response
    /// time plot in the paper).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; a negative elapsed time is
    /// always a simulation bug and must not be silently clamped.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from a (possibly fractional) number of microseconds.
    ///
    /// Used by the calibration module, where constants are quoted in µs.
    /// Rounds to the nearest nanosecond.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us >= 0.0 && us.is_finite(), "invalid duration: {us} us");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Time to move `bytes` through a resource with throughput
    /// `bytes_per_sec`, rounded up to the next nanosecond (a transfer is
    /// not complete until its last bit has passed).
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "invalid bandwidth: {bytes_per_sec} B/s"
        );
        let ns = (bytes as f64) * 1e9 / bytes_per_sec;
        SimDuration(ns.ceil() as u64)
    }

    /// `cycles` periods of a clock running at `hz`.
    pub fn for_cycles(cycles: u64, hz: f64) -> Self {
        assert!(hz > 0.0 && hz.is_finite(), "invalid frequency: {hz} Hz");
        let ns = (cycles as f64) * 1e9 / hz;
        SimDuration(ns.ceil() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "SimDuration underflow: {self} - {rhs}");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 1 byte at 1 GB/s is exactly 1 ns.
        assert_eq!(SimDuration::for_bytes(1, 1e9).as_nanos(), 1);
        // 1 byte at 3 GB/s is 0.33 ns and must round *up*.
        assert_eq!(SimDuration::for_bytes(1, 3e9).as_nanos(), 1);
        // 1 KiB at 12.5 GB/s (100 Gbps) is 81.92 ns -> 82 ns.
        assert_eq!(SimDuration::for_bytes(1024, 12.5e9).as_nanos(), 82);
    }

    #[test]
    fn for_cycles_matches_clock() {
        // 250 MHz -> 4 ns per cycle.
        assert_eq!(SimDuration::for_cycles(1, 250e6).as_nanos(), 4);
        assert_eq!(SimDuration::for_cycles(1000, 250e6).as_nanos(), 4_000);
        // 300 MHz -> 3.33.. ns, rounded up per call.
        assert_eq!(SimDuration::for_cycles(3, 300e6).as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "SimTime::since")]
    fn since_panics_on_negative_elapsed() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
    }

    #[test]
    fn sum_and_scalar_ops() {
        let parts = [
            SimDuration::from_nanos(10),
            SimDuration::from_nanos(20),
            SimDuration::from_nanos(30),
        ];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total.as_nanos(), 60);
        assert_eq!((total * 2).as_nanos(), 120);
        assert_eq!((total / 3).as_nanos(), 20);
        assert_eq!(
            total.saturating_sub(SimDuration::from_nanos(100)),
            SimDuration::ZERO
        );
    }
}
