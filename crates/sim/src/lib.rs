//! # fv-sim — deterministic discrete-event simulation substrate
//!
//! The Farview paper evaluates an FPGA smart NIC attached to a 100 Gbps
//! network. This reproduction has no FPGA and no RDMA fabric, so every
//! timing-sensitive experiment runs on the deterministic discrete-event
//! engine in this crate instead (see `DESIGN.md` §1 for the substitution
//! argument).
//!
//! The crate provides four things:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) and rate helpers (`bytes / bandwidth -> duration`).
//! * [`engine`] — a single-threaded actor-model event engine
//!   ([`Simulation`], [`Actor`], [`Context`]). Actors exchange typed
//!   messages with explicit delays; execution order is fully deterministic
//!   (time, then insertion sequence).
//! * [`queueing`] — reusable resource models: a serialized
//!   [`BandwidthServer`] (DRAM channel, PCIe hop, wire), and a
//!   deficit-round-robin [`DrrScheduler`] used for the fair-share
//!   arbitration the paper's network stack implements (§4.3).
//! * [`calib`] — every hardware constant used anywhere in the
//!   reproduction, each documented with the sentence of the paper (or the
//!   public datasheet) it is calibrated against.
//!
//! Nothing in this crate knows about Farview specifically; `fv-mem`,
//! `fv-net` and `farview-core` instantiate actors on top of it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod calib;
pub mod cost;
pub mod engine;
pub mod queueing;
pub mod stats;
pub mod time;

pub use cost::{MigrationCostModel, PlanCostModel};
pub use engine::{Actor, ActorId, Context, Simulation};
pub use queueing::{BandwidthServer, DrrScheduler};
pub use stats::{Histogram, MergeCostModel, RunningStats};
pub use time::{SimDuration, SimTime};
