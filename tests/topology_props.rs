//! Property tests for the elastic topology: growing, draining and
//! killing nodes must never change what a query returns.
//!
//! The invariants, per the placement design
//! (`farview_core::topology`):
//!
//! * **(a)** Query results *before* a rebalance, *during* it (an
//!   old-epoch handle still in flight) and *after* it are byte-identical
//!   to a fresh fleet built directly at the target size — for both
//!   [`Partitioning::RowRange`] and [`Partitioning::KeyHash`]. A
//!   rebalanced placement *is* the fresh placement, so this reduces to
//!   the fleet-vs-single-node properties already pinned in
//!   `tests/fleet_props.rs`.
//! * **(b)** With replication `r = 2`, killing any single node leaves
//!   every query answerable and byte-identical (reads fall back to the
//!   surviving replica).
//! * **(c)** The `elasticity` experiment's per-query latency strictly
//!   improves from 2 to 8 nodes on the scan-heavy mix.

use proptest::prelude::*;

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec, PredicateExpr};
use fv_data::{Schema, Table, TableBuilder, Value};

/// A random small table: 3 u64 columns with bounded values so groups,
/// predicates and hash keys are non-degenerate and `AVG` sums stay
/// exactly representable in `f64`.
fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec(prop::collection::vec(0u64..64, 3), 1..=max_rows).prop_map(|rows| {
        let schema = Schema::uniform_u64(3);
        let mut b = TableBuilder::with_capacity(schema, rows.len());
        for r in rows {
            b.push_values(r.into_iter().map(Value::U64).collect());
        }
        b.build()
    })
}

/// The query mix every property runs: a scan, a selection, a DISTINCT
/// and a GROUP BY — one of each merge shape.
fn specs() -> Vec<PipelineSpec> {
    vec![
        PipelineSpec::passthrough(),
        PipelineSpec::passthrough().filter(PredicateExpr::lt(1, 32u64)),
        PipelineSpec::passthrough().distinct(vec![0]),
        PipelineSpec::passthrough().group_by(
            vec![0],
            vec![
                AggSpec {
                    col: 2,
                    func: AggFunc::Sum,
                },
                AggSpec {
                    col: 2,
                    func: AggFunc::Avg,
                },
            ],
        ),
    ]
}

fn run_all(qp: &FleetQPair, ft: &FleetTable) -> Vec<Vec<u8>> {
    specs()
        .iter()
        .map(|s| qp.far_view(ft, s).unwrap().merged.payload)
        .collect()
}

fn fresh_fleet_results(nodes: usize, table: &Table, part: Partitioning) -> Vec<Vec<u8>> {
    let fleet = FarviewFleet::new(nodes, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (ft, _) = qp.load_table(table, part).unwrap();
    run_all(&qp, &ft)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (a) Grow + rebalance: the old-epoch handle keeps answering
    /// byte-identically while in flight, and the new-epoch handle is
    /// byte-identical to a fresh fleet built directly at the target
    /// size — for both partitionings and every merge shape.
    #[test]
    fn rebalance_is_byte_identical_before_during_and_after(
        table in arb_table(150),
        part in prop::sample::select(vec![Partitioning::RowRange, Partitioning::KeyHash(0)]),
        from in 1usize..4,
        grow in 1usize..4,
    ) {
        let fleet = FarviewFleet::new(from, FarviewConfig::tiny());
        let qp = fleet.connect().unwrap();
        let (old, _) = qp.load_table(&table, part).unwrap();
        let before = run_all(&qp, &old);

        for _ in 0..grow {
            fleet.add_node();
        }
        let (new, report) = qp.rebalance(&old).unwrap();
        prop_assert_eq!(new.epoch(), grow as u64, "epoch flipped to the target");
        prop_assert_eq!(report.to_epoch, grow as u64);
        prop_assert_eq!(
            report.moved_bytes,
            report.moved_rows * table.schema().row_bytes() as u64
        );

        // During: the old epoch still serves, byte-identically.
        prop_assert_eq!(run_all(&qp, &old), before.clone());
        // After: the new epoch equals a fresh fleet of the target size.
        let fresh = fresh_fleet_results(from + grow, &table, part);
        prop_assert_eq!(run_all(&qp, &new), fresh);
        // And the epoch flip costs pages only until the old handle is
        // retired.
        let free_mid = fleet.free_pages();
        qp.free_table(old).unwrap();
        prop_assert!(fleet.free_pages() >= free_mid);
    }

    /// (a, shrink direction) Drain + rebalance moves every shard off
    /// the draining node and matches a fresh fleet of the smaller size.
    #[test]
    fn drain_rebalance_matches_smaller_fresh_fleet(
        table in arb_table(120),
        part in prop::sample::select(vec![Partitioning::RowRange, Partitioning::KeyHash(0)]),
        nodes in 2usize..5,
    ) {
        let fleet = FarviewFleet::new(nodes, FarviewConfig::tiny());
        let qp = fleet.connect().unwrap();
        let (old, _) = qp.load_table(&table, part).unwrap();
        let victim = fleet.node_ids()[nodes - 1];
        fleet.drain_node(victim).unwrap();
        let (new, _) = qp.rebalance(&old).unwrap();
        prop_assert!(!new.placement().nodes().contains(&victim));
        let fresh = fresh_fleet_results(nodes - 1, &table, part);
        prop_assert_eq!(run_all(&qp, &new), fresh);
    }

    /// (b) With r = 2, killing any single node leaves every query
    /// answerable and byte-identical: reads fall back to the surviving
    /// replica transparently.
    #[test]
    fn any_single_kill_is_survived_at_r2(
        table in arb_table(150),
        part in prop::sample::select(vec![Partitioning::RowRange, Partitioning::KeyHash(0)]),
        nodes in 2usize..5,
        victim_seed in 0usize..8,
    ) {
        let fleet = FarviewFleet::new(nodes, FarviewConfig::tiny());
        let qp = fleet.connect().unwrap();
        let (ft, _) = qp.load_table_replicated(&table, part, 2).unwrap();
        let before = run_all(&qp, &ft);

        let victim = fleet.node_ids()[victim_seed % nodes];
        fleet.remove_node(victim).unwrap();
        prop_assert_eq!(
            run_all(&qp, &ft),
            before,
            "replica fallback must be byte-exact for every merge shape"
        );
    }
}

/// Replay a generated churn schedule end to end: query bursts
/// interleaved with adds, drains and kills, a rebalance after every
/// membership event (re-replicating after kills), old epochs retired as
/// soon as their successor exists — and every query byte-identical to a
/// single node holding the same rows throughout.
#[test]
fn churn_schedule_replays_byte_identically() {
    use fv_workload::{ChurnEvent, ChurnScenarioGen, TableGen};

    let scenario = ChurnScenarioGen::new(2, 10)
        .queries_per_phase(4)
        .with_drains()
        .with_kills()
        .seed(23)
        .build();
    assert_eq!(scenario.replicas, 2, "kill schedules load replicated");

    // Tenant-shaped table: c0 group key, c1 calibrated selectivity,
    // c2 aggregation payload — what `tenant_query_spec` lowers against.
    let table = TableGen::new(8, 1024)
        .seed(29)
        .distinct_column(0, 16)
        .selectivity_column(1, 0.5)
        .sequential_column(2)
        .build();
    let single = FarviewCluster::new(FarviewConfig::tiny());
    let sqp = single.connect().unwrap();
    let (sft, _) = sqp.load_table(&table).unwrap();

    let fleet = FarviewFleet::new(scenario.initial_nodes, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (mut ft, _) = qp
        .load_table_replicated(&table, Partitioning::RowRange, scenario.replicas)
        .unwrap();

    let rebalance = |ft: &mut FleetTable| {
        let (new_ft, _) = qp.rebalance(ft).unwrap();
        let old = std::mem::replace(ft, new_ft);
        qp.free_table(old).unwrap();
    };
    for event in &scenario.events {
        match event {
            ChurnEvent::Queries(qs) => {
                for q in qs {
                    let spec = fv_bench::tenant_query_spec(q);
                    let out = qp.far_view(&ft, &spec).unwrap();
                    let reference = sqp.far_view(&sft, &spec).unwrap();
                    assert_eq!(
                        out.merged.payload, reference.payload,
                        "churned fleet diverged from the single node on {q:?}"
                    );
                }
            }
            ChurnEvent::AddNode => {
                fleet.add_node();
                rebalance(&mut ft);
            }
            ChurnEvent::DrainNode(i) => {
                let id = fleet.node_ids()[*i];
                fleet.drain_node(id).unwrap();
                rebalance(&mut ft);
                fleet.remove_node(id).unwrap();
            }
            ChurnEvent::KillNode(i) => {
                let id = fleet.node_ids()[*i];
                fleet.remove_node(id).unwrap();
                // Re-replicate: the rebalance sources from survivors and
                // restores r copies of every shard on the new roster.
                rebalance(&mut ft);
            }
        }
    }
    qp.free_table(ft).unwrap();
}

/// Zero-row tables ride the whole elastic lifecycle: load, query,
/// rebalance after a grow, query again — empty shards everywhere, no
/// panics, empty results.
#[test]
fn zero_row_table_survives_load_rebalance_and_query() {
    let table = TableBuilder::with_capacity(Schema::uniform_u64(3), 0).build();
    let fleet = FarviewFleet::new(2, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
    for payload in run_all(&qp, &ft) {
        assert!(payload.is_empty(), "zero rows in, zero bytes out");
    }
    fleet.add_node();
    let (new_ft, report) = qp.rebalance(&ft).unwrap();
    assert_eq!(report.moved_rows, 0, "nothing to move");
    for payload in run_all(&qp, &new_ft) {
        assert!(payload.is_empty());
    }
    qp.free_table(ft).unwrap();
    qp.free_table(new_ft).unwrap();
}

/// With every holder of a shard dead (`r = 1`, sole holder killed), a
/// rebalance has nowhere to copy from: it must surface
/// `FvError::NodeDown` — a typed error, not a panic.
#[test]
fn rebalance_with_all_source_holders_dead_is_typed_node_down() {
    let table = TableGen::new(8, 128).seed(31).build();
    let fleet = FarviewFleet::new(2, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
    let victim = fleet.node_ids()[0];
    fleet.remove_node(victim).unwrap();
    match qp.rebalance(&ft) {
        Ok(_) => panic!("a shard with no surviving holder cannot be re-placed"),
        Err(e) => assert!(
            matches!(e, FvError::NodeDown { .. }),
            "want NodeDown, got {e}"
        ),
    }
}

/// Back-to-back rebalances with no query in between: each flip chains
/// off the previous epoch's handle, and the final epoch is
/// byte-identical to a fresh fleet built directly at the target size.
#[test]
fn back_to_back_rebalances_with_no_query_between() {
    let table = TableGen::new(8, 256)
        .seed(37)
        .distinct_column(0, 16)
        .build();
    let fleet = FarviewFleet::new(1, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (mut ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
    for _ in 0..3 {
        fleet.add_node();
        let (new_ft, _) = qp.rebalance(&ft).unwrap();
        let old = std::mem::replace(&mut ft, new_ft);
        qp.free_table(old).unwrap();
    }
    assert_eq!(ft.epoch(), 3);
    let fresh = fresh_fleet_results(4, &table, Partitioning::RowRange);
    assert_eq!(run_all(&qp, &ft), fresh);
    qp.free_table(ft).unwrap();
}

/// Kill interleaved at **every** phase boundary of a churn schedule,
/// via the chaos fault hooks: at each boundary a rotating victim is
/// fully partitioned ([`FarviewFleet::degrade_node`]), the query mix
/// probes the fleet (replica failover must stay byte-identical to the
/// single-node oracle), the victim heals, and only then does the
/// membership event proceed.
#[test]
fn churn_survives_a_partition_probe_at_every_phase_boundary() {
    use fv_workload::{ChurnEvent, ChurnScenarioGen, FaultSpec, TableGen};

    let scenario = ChurnScenarioGen::new(2, 8)
        .queries_per_phase(3)
        .with_drains()
        .with_kills()
        .seed(41)
        .build();
    assert_eq!(scenario.replicas, 2, "kill schedules load replicated");

    let table = TableGen::new(8, 512)
        .seed(43)
        .distinct_column(0, 16)
        .selectivity_column(1, 0.5)
        .sequential_column(2)
        .build();
    let single = FarviewCluster::new(FarviewConfig::tiny());
    let sqp = single.connect().unwrap();
    let (sft, _) = sqp.load_table(&table).unwrap();
    let oracle: Vec<Vec<u8>> = specs()
        .iter()
        .map(|s| sqp.far_view(&sft, s).unwrap().payload)
        .collect();

    let fleet = FarviewFleet::new(scenario.initial_nodes, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (mut ft, _) = qp
        .load_table_replicated(&table, Partitioning::RowRange, scenario.replicas)
        .unwrap();

    let rebalance = |ft: &mut FleetTable| {
        let (new_ft, _) = qp.rebalance(ft).unwrap();
        let old = std::mem::replace(ft, new_ft);
        qp.free_table(old).unwrap();
    };
    for (boundary, event) in scenario.events.iter().enumerate() {
        // The boundary probe: partition a rotating victim and demand
        // byte-exact answers through replica failover.
        let roster = fleet.node_ids();
        let victim = roster[boundary % roster.len()];
        fleet
            .degrade_node(victim, fv_bench::fault_plan_for(&FaultSpec::Partition, 5))
            .unwrap();
        for (i, spec) in specs().iter().enumerate() {
            let out = qp.far_view(&ft, spec).unwrap_or_else(|e| {
                panic!("boundary {boundary}: probe under partition failed: {e}")
            });
            assert_eq!(
                out.merged.payload, oracle[i],
                "boundary {boundary}: partition probe diverged from the oracle"
            );
        }
        fleet.heal_node(victim).unwrap();

        match event {
            ChurnEvent::Queries(qs) => {
                for q in qs {
                    let spec = fv_bench::tenant_query_spec(q);
                    let out = qp.far_view(&ft, &spec).unwrap();
                    let reference = sqp.far_view(&sft, &spec).unwrap();
                    assert_eq!(out.merged.payload, reference.payload);
                }
            }
            ChurnEvent::AddNode => {
                fleet.add_node();
                rebalance(&mut ft);
            }
            ChurnEvent::DrainNode(i) => {
                let id = fleet.node_ids()[*i];
                fleet.drain_node(id).unwrap();
                rebalance(&mut ft);
                fleet.remove_node(id).unwrap();
            }
            ChurnEvent::KillNode(i) => {
                let id = fleet.node_ids()[*i];
                fleet.remove_node(id).unwrap();
                rebalance(&mut ft);
            }
        }
    }
    qp.free_table(ft).unwrap();
}

/// (c) The `elasticity` experiment: per-query latency strictly improves
/// from 2 to 8 nodes on the scan-heavy mix (byte-identity across the
/// growth phases and the post-kill phase is asserted inside the
/// experiment itself).
#[test]
fn elasticity_latency_strictly_improves_2_to_8() {
    let f = fv_bench::elasticity_smoke();
    let latency = &f.series("mean latency [us]").unwrap().points;
    let growth = &latency[..fv_bench::ELASTICITY_PHASES.len()];
    for w in growth.windows(2) {
        assert!(
            w[1].1 < w[0].1,
            "mean latency must strictly improve with fleet size: {} -> {} us",
            w[0].1,
            w[1].1
        );
    }
}
