//! Property-based batching correctness: a doorbell-batched fleet run
//! (any queue depth) and a sequential run of the same queries are two
//! schedules of the same semantics — every merged result must be
//! **byte-identical**, for row-range *and* key-hash partitioning,
//! including shards that receive zero rows and `GROUP BY AVG` over
//! `I64` values near the integer-overflow boundary (where an integer
//! partial `SUM` would wrap but the `AVG → SUMF64 + COUNT` rewrite must
//! not).

use proptest::prelude::*;

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec, PredicateExpr};
use fv_data::{Column, ColumnType, Schema, TableBuilder};

/// A random small table of 3 bounded `u64` columns (c0 = group key,
/// c1 = predicate column, c2 = aggregation payload). `1..=max_rows`
/// rows, so with 4+ shards the low end leaves some shards empty.
fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((0u64..24, 0u64..1000, 0u64..64), 1..=max_rows).prop_map(|rows| {
        let schema = Schema::uniform_u64(3);
        let mut b = TableBuilder::with_capacity(schema, rows.len());
        for (k, p, v) in rows {
            b.push_values(vec![Value::U64(k), Value::U64(p), Value::U64(v)]);
        }
        b.build()
    })
}

/// A table whose payload column is `I64` with values `k · 2⁵²`,
/// `|k| ≤ 1024` — magnitudes up to ±2⁶², so a handful of same-sign rows
/// pushes an integer sum past `i64::MAX`, while every partial and total
/// `f64` sum stays exactly representable (`m · 2⁵²` with `|m| < 2⁵³`).
/// That makes the fleet's `AVG` merge bit-equal to the single node's.
fn arb_near_overflow_table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((0u64..4, -1024i64..1025), 0..=max_rows).prop_map(|rows| {
        let schema = Schema::new(vec![
            Column {
                name: "k".into(),
                ty: ColumnType::U64,
            },
            Column {
                name: "v".into(),
                ty: ColumnType::I64,
            },
        ]);
        let mut b = TableBuilder::with_capacity(schema, rows.len());
        for (k, m) in rows {
            b.push_values(vec![Value::U64(k), Value::I64(m << 52)]);
        }
        b.build()
    })
}

/// The query mix every batching property runs: selection, plain read,
/// `DISTINCT`, and `GROUP BY` with `AVG` (the partial-aggregate
/// rewrite) + `SUM`.
fn query_mix(threshold: u64) -> Vec<PipelineSpec> {
    vec![
        PipelineSpec::passthrough(),
        PipelineSpec::passthrough().filter(PredicateExpr::lt(1, threshold)),
        PipelineSpec::passthrough().distinct(vec![0]),
        PipelineSpec::passthrough().group_by(
            vec![0],
            vec![
                AggSpec {
                    col: 2,
                    func: AggFunc::Avg,
                },
                AggSpec {
                    col: 2,
                    func: AggFunc::Sum,
                },
            ],
        ),
        PipelineSpec::passthrough().filter(PredicateExpr::gt(1, threshold)),
        PipelineSpec::passthrough().group_by(
            vec![0],
            vec![AggSpec {
                col: 1,
                func: AggFunc::Max,
            }],
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A batched fleet run returns byte-identical per-query results to
    /// sequential single-query runs — any queue depth, both
    /// partitionings, including zero-row shards (tables smaller than the
    /// fleet are generated at the low end of `arb_table`).
    #[test]
    fn batched_fleet_equals_sequential(
        table in arb_table(120),
        threshold in 0u64..1000,
        nodes in 2usize..5,
        depth in 1usize..=9,
        hash in any::<bool>(),
    ) {
        let part = if hash { Partitioning::KeyHash(0) } else { Partitioning::RowRange };
        let fleet = FarviewFleet::new(nodes, FarviewConfig::tiny());
        let qp = fleet.connect().unwrap();
        let (ft, _) = qp.load_table(&table, part).unwrap();
        let specs = query_mix(threshold);

        let sequential: Vec<FleetQueryOutcome> =
            specs.iter().map(|s| qp.far_view(&ft, s).unwrap()).collect();
        let mut batched = Vec::new();
        for chunk in specs.chunks(depth) {
            batched.extend(qp.far_view_batch(&ft, chunk).unwrap());
        }
        prop_assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            prop_assert_eq!(
                &b.merged.payload, &s.merged.payload,
                "query {} diverged at depth {} over {} nodes ({:?})",
                i, depth, nodes, part
            );
            prop_assert_eq!(&b.merged.schema, &s.merged.schema);
        }
    }

    /// `GROUP BY AVG` over near-overflow `I64` values: batched, fleet,
    /// and single-node runs all agree byte-for-byte under row-range
    /// partitioning — the `AVG → SUMF64 + COUNT` rewrite neither wraps
    /// nor re-associates into different `f64` bits. Tables may be empty
    /// or smaller than the fleet (zero-row shards).
    #[test]
    fn group_by_avg_near_overflow_is_exact(
        table in arb_near_overflow_table(80),
        nodes in 2usize..5,
        depth in 1usize..=4,
    ) {
        let spec = PipelineSpec::passthrough().group_by(
            vec![0],
            vec![AggSpec { col: 1, func: AggFunc::Avg }],
        );

        // Single-node reference.
        let c = FarviewCluster::new(FarviewConfig::tiny());
        let sqp = c.connect().unwrap();
        let (sft, _) = sqp.load_table(&table).unwrap();
        let single = sqp.far_view(&sft, &spec).unwrap();

        let fleet = FarviewFleet::new(nodes, FarviewConfig::tiny());
        let qp = fleet.connect().unwrap();
        let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
        let sequential = qp.far_view(&ft, &spec).unwrap();
        prop_assert_eq!(&sequential.merged.payload, &single.payload);

        // The same query repeated to fill one doorbell batch: every
        // copy must come back identical.
        let specs = vec![spec; depth];
        let batched = qp.far_view_batch(&ft, &specs).unwrap();
        for b in &batched {
            prop_assert_eq!(&b.merged.payload, &single.payload);
            prop_assert_eq!(&b.merged.schema, &single.schema);
        }
    }
}
