//! Property-based equivalence of the vectorized block datapath.
//!
//! The block path (selection vectors + gather-at-pack + per-block
//! operator dispatch) and the scalar per-tuple path (the seed execution
//! model, `CompiledPipeline::force_scalar`) are two routes through the
//! same operator semantics: for **every** operator combination, chunking
//! pattern and ragged final block, their outputs must be byte-identical
//! and their counters equal. Likewise the parallel fleet scatter
//! (`Executor::fleet`) against its serial reference
//! (`Executor::fleet_serial`), and the execute-once replica read against
//! the seed's execute-every-replica race.

use proptest::prelude::*;

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec, Executor, PredicateExpr};
use fv_pipeline::cuckoo::CuckooTable;
use fv_pipeline::distinct::{DistinctOp, DEFAULT_LRU_DEPTH};
use fv_pipeline::project::ProjectionPlan;
use fv_pipeline::{
    CompiledPipeline, CryptoSpec, JoinSmallSpec, PipelineStats, StreamOperator, TupleBlock,
};
use fv_regex::Regex;

use fv_data::{Column, ColumnType, Schema, Table, TableBuilder};

const AES_KEY: [u8; 16] = [0x5a; 16];
const AES_IV: [u8; 16] = [0xc3; 16];

/// A random table of `cols` u64 columns with bounded values.
fn arb_table(max_rows: usize, cols: usize, value_bound: u64) -> impl Strategy<Value = Table> {
    prop::collection::vec(prop::collection::vec(0..value_bound, cols), 0..=max_rows).prop_map(
        move |rows| {
            let schema = Schema::uniform_u64(cols);
            let mut b = TableBuilder::with_capacity(schema, rows.len());
            for r in rows {
                b.push_values(r.into_iter().map(Value::U64).collect());
            }
            b.build()
        },
    )
}

/// A random table with a u64 key column and one fixed-width string
/// column drawn from a tiny alphabet (so regexes are non-degenerate).
fn arb_string_table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec(prop::collection::vec(0u64..4, 6), 0..=max_rows).prop_map(|rows| {
        let schema = Schema::new(vec![
            Column {
                name: "k".into(),
                ty: ColumnType::U64,
            },
            Column {
                name: "s".into(),
                ty: ColumnType::Bytes(8),
            },
        ]);
        let mut b = TableBuilder::with_capacity(schema, rows.len());
        for (i, picks) in rows.iter().enumerate() {
            let s: Vec<u8> = picks.iter().map(|&p| b"abcx"[p as usize]).collect();
            b.push_values(vec![Value::U64(i as u64), Value::Bytes(s)]);
        }
        b.build()
    })
}

/// Chunk lengths to slice the stream with (1..=96 B — deliberately not
/// tuple-aligned, so every run exercises cross-chunk framing and ragged
/// final blocks).
fn arb_chunks() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..96, 1..12)
}

/// Stream `data` through a fresh compile of `spec`, slicing it by
/// cycling `chunk_sizes`, draining after every chunk exactly like the
/// episode engine does. `scalar` selects the reference per-tuple path.
fn run_pipeline(
    spec: &PipelineSpec,
    schema: &Schema,
    data: &[u8],
    chunk_sizes: &[usize],
    scalar: bool,
) -> (Vec<u8>, PipelineStats) {
    let mut p = CompiledPipeline::compile(spec.clone(), schema).expect("spec compiles");
    p.force_scalar(scalar);
    let mut out = Vec::new();
    let mut off = 0usize;
    let mut i = 0usize;
    while off < data.len() {
        let len = chunk_sizes[i % chunk_sizes.len()].min(data.len() - off);
        i += 1;
        p.push_bytes(&data[off..off + len]);
        off += len;
        out.extend(p.drain_output());
    }
    p.finish();
    out.extend(p.drain_output());
    (out, p.stats())
}

/// Assert both routes agree on bytes and counters.
fn assert_equivalent(spec: &PipelineSpec, schema: &Schema, data: &[u8], chunks: &[usize]) {
    let (block, block_stats) = run_pipeline(spec, schema, data, chunks, false);
    let (scalar, scalar_stats) = run_pipeline(spec, schema, data, chunks, true);
    assert_eq!(
        block, scalar,
        "block and per-tuple routes must be byte-identical for {spec:?}"
    );
    assert_eq!(
        block_stats, scalar_stats,
        "block and per-tuple routes must count identically for {spec:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Passthrough, filter, project and the fused filter+project scan.
    #[test]
    fn scan_shapes_are_route_invariant(
        table in arb_table(120, 4, 500),
        threshold in 0u64..500,
        keep_raw in prop::collection::vec(0usize..4, 1..4),
        chunks in arb_chunks(),
    ) {
        // Projections list distinct columns (duplicates have no schema).
        let mut keep = Vec::new();
        for c in keep_raw {
            if !keep.contains(&c) {
                keep.push(c);
            }
        }
        let schema = table.schema();
        let specs = [
            PipelineSpec::passthrough(),
            PipelineSpec::passthrough().filter(PredicateExpr::lt(0, threshold)),
            PipelineSpec::passthrough().project(keep.clone()),
            PipelineSpec::passthrough()
                .project(keep.clone())
                .filter(PredicateExpr::lt(1, threshold)),
            PipelineSpec::passthrough().filter(
                PredicateExpr::lt(0, threshold).or(PredicateExpr::gt(2, threshold)),
            ),
        ];
        for spec in &specs {
            assert_equivalent(spec, schema, table.bytes(), &chunks);
        }
    }

    /// Regex selection, alone and stacked behind a predicate.
    #[test]
    fn regex_is_route_invariant(
        table in arb_string_table(100),
        threshold in 0u64..100,
        chunks in arb_chunks(),
    ) {
        let schema = table.schema();
        let specs = [
            PipelineSpec::passthrough().regex_match(1, "a+b"),
            PipelineSpec::passthrough().regex_match(1, "^ab*c"),
            PipelineSpec::passthrough()
                .filter(PredicateExpr::lt(0, threshold))
                .regex_match(1, "c(a|b)"),
        ];
        for spec in &specs {
            assert_equivalent(spec, schema, table.bytes(), &chunks);
        }
    }

    /// Smart addressing: the gathered (already projected) stream frames
    /// at the narrow tuple width.
    #[test]
    fn smart_addressing_is_route_invariant(
        table in arb_table(100, 8, 1000),
        chunks in arb_chunks(),
    ) {
        let spec = PipelineSpec::passthrough()
            .project(vec![1, 2, 5])
            .with_smart_addressing();
        let schema = table.schema();
        let p = CompiledPipeline::compile(spec.clone(), schema).expect("compiles");
        let sa = p.smart_addressing().expect("SA planned").clone();
        let mut gathered = Vec::new();
        for r in 0..table.row_count() {
            sa.gather(table.bytes(), r * schema.row_bytes(), &mut gathered);
        }
        assert_equivalent(&spec, schema, &gathered, &chunks);
    }

    /// DISTINCT (hazard window, LRU, overflow) and GROUP BY with every
    /// aggregation function.
    #[test]
    fn grouping_is_route_invariant(
        table in arb_table(150, 3, 24),
        chunks in arb_chunks(),
    ) {
        let schema = table.schema();
        let aggs: Vec<AggSpec> = [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::SumF64,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ]
        .into_iter()
        .map(|func| AggSpec { col: 1, func })
        .collect();
        let specs = [
            PipelineSpec::passthrough().distinct(vec![0]),
            PipelineSpec::passthrough().distinct(vec![0, 2]),
            PipelineSpec::passthrough().group_by(vec![0], aggs),
            PipelineSpec::passthrough()
                .filter(PredicateExpr::lt(2, 12u64))
                .group_by(
                    vec![0],
                    vec![AggSpec {
                        col: 1,
                        func: AggFunc::Sum,
                    }],
                ),
        ];
        for spec in &specs {
            assert_equivalent(spec, schema, table.bytes(), &chunks);
        }
    }

    /// The broadcast join, alone and behind a filter.
    #[test]
    fn join_is_route_invariant(
        table in arb_table(100, 3, 40),
        build_rows in prop::collection::vec(0u64..40, 1..20),
        threshold in 0u64..40,
        chunks in arb_chunks(),
    ) {
        let mut bb = TableBuilder::new(Schema::uniform_u64(2));
        for (i, &k) in build_rows.iter().enumerate() {
            bb.push_values(vec![Value::U64(k), Value::U64(1000 + i as u64)]);
        }
        let build = bb.build();
        let schema = table.schema();
        let join = JoinSmallSpec::new(0, &build, 0);
        let specs = [
            PipelineSpec::passthrough().join_small(join.clone()),
            PipelineSpec::passthrough()
                .filter(PredicateExpr::lt(1, threshold))
                .join_small(join),
        ];
        for spec in &specs {
            assert_equivalent(spec, schema, table.bytes(), &chunks);
        }
    }

    /// Run-heavy (clustered) key columns — fact tables physically
    /// ordered on a foreign key — drive the batched hash operators'
    /// run-memoization: repeated keys inside a block reuse the previous
    /// tuple's lookup (join) or LRU slot (distinct). Every memoized
    /// shortcut must stay byte- and counter-identical to the per-tuple
    /// reference, including hazard-window duplicates inside a run.
    #[test]
    fn clustered_keys_are_route_invariant(
        runs in prop::collection::vec((0u64..12, 1usize..10), 1..40),
        build_rows in prop::collection::vec(0u64..12, 1..16),
        chunks in arb_chunks(),
    ) {
        let schema = Schema::uniform_u64(3);
        let mut b = TableBuilder::new(schema);
        let mut row = 0u64;
        for &(key, len) in &runs {
            for _ in 0..len {
                b.push_values(vec![Value::U64(key), Value::U64(row), Value::U64(row / 2)]);
                row += 1;
            }
        }
        let table = b.build();
        let mut bb = TableBuilder::new(Schema::uniform_u64(2));
        for (i, &k) in build_rows.iter().enumerate() {
            bb.push_values(vec![Value::U64(k), Value::U64(900 + i as u64)]);
        }
        let build = bb.build();
        let specs = [
            PipelineSpec::passthrough().distinct(vec![0]),
            PipelineSpec::passthrough().group_by(
                vec![0],
                vec![AggSpec { col: 1, func: AggFunc::Sum }],
            ),
            PipelineSpec::passthrough().join_small(JoinSmallSpec::new(0, &build, 0)),
        ];
        for spec in &specs {
            assert_equivalent(spec, table.schema(), table.bytes(), &chunks);
        }
    }

    /// Compression and both crypto directions around a data-reducing
    /// pipeline (the decrypt scratch path and the compressor tail frame
    /// must behave identically on both routes).
    #[test]
    fn codec_stages_are_route_invariant(
        table in arb_table(100, 4, 200),
        threshold in 0u64..200,
        chunks in arb_chunks(),
    ) {
        let key = CryptoSpec { key: AES_KEY, iv: AES_IV };
        // Store the table encrypted so the decrypt stage sees real CTR
        // ciphertext.
        let mut cipher = table.bytes().to_vec();
        fv_crypto::ctr_apply_at(&AES_KEY, &AES_IV, 0, &mut cipher);
        let schema = table.schema();
        let specs = [
            PipelineSpec::passthrough().compress(),
            PipelineSpec::passthrough()
                .filter(PredicateExpr::lt(0, threshold))
                .compress()
                .encrypt(key.clone()),
            PipelineSpec::passthrough()
                .decrypt(key.clone())
                .filter(PredicateExpr::lt(0, threshold)),
            PipelineSpec::passthrough()
                .decrypt(key.clone())
                .compress()
                .encrypt(key),
        ];
        for (i, spec) in specs.iter().enumerate() {
            let data: &[u8] = if spec.decrypt_input.is_some() {
                &cipher
            } else {
                table.bytes()
            };
            let _ = i;
            assert_equivalent(spec, schema, data, &chunks);
        }
    }

    /// The parallel fleet scatter joins in slot order: payloads, schemas
    /// and fleet-aggregated stats are byte-identical to the serial
    /// reference for single queries and doorbell batches.
    #[test]
    fn parallel_scatter_matches_serial(
        table in arb_table(120, 3, 300),
        nodes in 1usize..5,
        thresholds in prop::collection::vec(0u64..300, 1..4),
    ) {
        // Two identically shaped fleets, so the stateful region
        // bookkeeping (pipeline fingerprints → `reconfigured` flags)
        // starts from the same point on both routes.
        let run = |parallel: bool| {
            let fleet = FarviewFleet::new(nodes, FarviewConfig::tiny());
            let qp = fleet.connect().unwrap();
            let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
            let specs: Vec<PipelineSpec> = thresholds
                .iter()
                .map(|&t| PipelineSpec::passthrough().filter(PredicateExpr::lt(0, t)))
                .collect();
            if parallel {
                Executor::fleet(&qp, &ft, &specs).unwrap()
            } else {
                Executor::fleet_serial(&qp, &ft, &specs).unwrap()
            }
        };
        let parallel = run(true);
        let serial = run(false);
        prop_assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            prop_assert_eq!(&p.merged.payload, &s.merged.payload);
            prop_assert_eq!(&p.merged.schema, &s.merged.schema);
            prop_assert_eq!(p.merged.stats, s.merged.stats);
            prop_assert_eq!(&p.per_shard, &s.per_shard);
        }
    }
}

/// Feed `stream` through a fresh `DistinctOp` per route — per-tuple
/// `push` vs `push_block` over ragged identity blocks — and assert the
/// emitted bytes and every hazard/overflow counter agree.
fn assert_distinct_routes_agree(make_op: impl Fn() -> DistinctOp, stream: &[u8], tb: usize) {
    let mut scalar_op = make_op();
    let mut scalar_out = Vec::new();
    for tuple in stream.chunks_exact(tb) {
        scalar_op.push(tuple, &mut |t| scalar_out.extend_from_slice(t));
    }

    let mut block_op = make_op();
    let mut block_out = Vec::new();
    // Ragged block boundaries, including mid-run splits (a key run that
    // straddles two blocks must re-seed the memo without skew).
    let mut off = 0usize;
    let mut sel: Vec<u32> = Vec::new();
    for lens in [5usize, 1, 9, 2, 17, 3].iter().cycle() {
        if off >= stream.len() {
            break;
        }
        let take = (lens * tb).min(stream.len() - off);
        let block = TupleBlock::new(&stream[off..off + take], tb);
        off += take;
        sel.clear();
        sel.extend(0..block.len() as u32);
        block_op.push_block(&block, &sel, &mut |t| block_out.extend_from_slice(t));
    }

    assert_eq!(
        scalar_out, block_out,
        "distinct routes must be byte-identical"
    );
    assert_eq!(scalar_op.emitted(), block_op.emitted());
    assert_eq!(scalar_op.hazard_leaks(), block_op.hazard_leaks());
    assert_eq!(scalar_op.hazard_catches(), block_op.hazard_catches());
    assert_eq!(scalar_op.overflow_tuples(), block_op.overflow_tuples());
}

/// A key stream dense in duplicate runs: every run shorter than the
/// write latency, so most repeats land inside the §5.4 hazard window
/// where only the LRU (or a leak) can answer.
fn hazard_heavy_stream() -> Vec<u8> {
    let mut stream = Vec::new();
    for i in 0..512u64 {
        // Runs of 1..=5 copies of each key, keys recycled mod 19 so
        // earlier keys return both inside and outside the window.
        let key = (i * i) % 19;
        for rep in 0..=(i % 5) {
            stream.extend_from_slice(&key.to_le_bytes());
            stream.extend_from_slice(&(i + rep).to_le_bytes());
        }
    }
    stream
}

/// Hazard-window duplicate runs, with the LRU shift register both
/// disabled (depth 0: every in-window duplicate leaks, exactly as the
/// paper's unguarded design would) and at its default depth (duplicates
/// are caught). The batched path's run memo must not change a byte or a
/// counter in either geometry.
#[test]
fn hazard_window_duplicate_runs_match_scalar_at_depth_0_and_default() {
    let schema = Schema::uniform_u64(2);
    let tb = schema.row_bytes();
    let stream = hazard_heavy_stream();
    for depth in [0usize, DEFAULT_LRU_DEPTH] {
        let make_op = || {
            let keys = ProjectionPlan::new(&Schema::uniform_u64(2), Some(&[0])).expect("plan");
            DistinctOp::with_geometry(keys, CuckooTable::with_default_geometry(), depth)
        };
        assert_distinct_routes_agree(make_op, &stream, tb);
        // Sanity on the fixture itself: depth 0 must actually leak.
        let mut op = make_op();
        for tuple in stream.chunks_exact(tb) {
            op.push(tuple, &mut |_| {});
        }
        if depth == 0 {
            assert!(op.hazard_leaks() > 0, "depth-0 fixture must exercise leaks");
        } else {
            assert!(
                op.hazard_catches() > 0,
                "default depth must catch in-window dups"
            );
        }
    }
}

/// A deliberately tiny cuckoo table (2 ways × 8 buckets) overflowing
/// under hundreds of distinct keys: the spill counter and the emitted
/// bytes must agree between routes (an overflowed key is dropped from
/// the table but still deduplicated best-effort by the LRU).
#[test]
fn cuckoo_overflow_spills_identically_on_both_routes() {
    let schema = Schema::uniform_u64(2);
    let tb = schema.row_bytes();
    let mut stream = Vec::new();
    for i in 0..400u64 {
        // Mostly-distinct keys with periodic repeats, so the overflowed
        // table still sees duplicate probes.
        let key = if i % 7 == 0 { i / 2 } else { i * 31 };
        stream.extend_from_slice(&key.to_le_bytes());
        stream.extend_from_slice(&i.to_le_bytes());
    }
    let make_op = || {
        let keys = ProjectionPlan::new(&Schema::uniform_u64(2), Some(&[0])).expect("plan");
        DistinctOp::with_geometry(keys, CuckooTable::new(2, 8), DEFAULT_LRU_DEPTH)
    };
    assert_distinct_routes_agree(make_op, &stream, tb);
    let mut op = make_op();
    for tuple in stream.chunks_exact(tb) {
        op.push(tuple, &mut |_| {});
    }
    assert!(op.overflow_tuples() > 0, "fixture must actually overflow");
}

/// The DFA prefilter block scan and the plain per-tuple walk are the
/// same predicate: one pattern that derives a skip set and one that
/// cannot (start-anchored) must both be route-invariant, so the smoke
/// here pins that the two select_block code paths are actually the ones
/// exercised.
#[test]
fn regex_prefilter_and_fallback_are_route_invariant() {
    let with_pf = "a+b";
    let without_pf = "^ab*c";
    assert!(
        Regex::compile(with_pf)
            .expect("compiles")
            .dfa()
            .prefilter()
            .is_some(),
        "{with_pf} must derive a required-progress-byte prefilter"
    );
    assert!(
        Regex::compile(without_pf)
            .expect("compiles")
            .dfa()
            .prefilter()
            .is_none(),
        "{without_pf} is start-anchored and must take the fallback walk"
    );

    let schema = Schema::new(vec![
        Column {
            name: "k".into(),
            ty: ColumnType::U64,
        },
        Column {
            name: "s".into(),
            ty: ColumnType::Bytes(8),
        },
    ]);
    let mut b = TableBuilder::with_capacity(schema, 256);
    let alphabet = b"abcx";
    for i in 0..256u64 {
        let s: Vec<u8> = (0..6).map(|j| alphabet[((i >> j) & 3) as usize]).collect();
        b.push_values(vec![Value::U64(i), Value::Bytes(s)]);
    }
    let table = b.build();
    let chunks = [96usize, 7, 33];
    for pattern in [with_pf, without_pf] {
        let spec = PipelineSpec::passthrough().regex_match(1, pattern);
        assert_equivalent(&spec, table.schema(), table.bytes(), &chunks);
    }
}

/// Replica-race regression (the dedup satellite): with `r = 2`, one
/// fleet query executes the datapath **once per shard slot** — not once
/// per replica — while a node kill is still survived byte-identically.
#[test]
fn replicated_reads_execute_once_per_slot() {
    let schema = Schema::uniform_u64(3);
    let mut b = TableBuilder::with_capacity(schema, 256);
    for i in 0..256u64 {
        b.push_values(vec![Value::U64(i % 13), Value::U64(i), Value::U64(i / 2)]);
    }
    let table = b.build();

    let fleet = FarviewFleet::new(4, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (ft, _) = qp
        .load_table_replicated(&table, Partitioning::RowRange, 2)
        .unwrap();
    let shards = ft.placement().shard_count();
    assert_eq!(ft.replicas(), 2);

    let episodes = || -> u64 {
        (0..fleet.node_count())
            .map(|i| fleet.node(i).expect("live node").episodes_run())
            .sum()
    };

    let spec = PipelineSpec::passthrough().filter(PredicateExpr::lt(1, 128u64));
    let before = episodes();
    let healthy = qp.far_view(&ft, &spec).unwrap();
    assert_eq!(
        episodes() - before,
        shards as u64,
        "one query must run the datapath exactly once per shard slot \
         (the replica race is modeled, not re-executed)"
    );

    // Kill one node: the surviving replica of each of its slots serves
    // the same bytes.
    let victim = fleet.node_ids()[0];
    fleet.remove_node(victim).unwrap();
    let post_kill = qp.far_view(&ft, &spec).unwrap();
    assert_eq!(
        post_kill.merged.payload, healthy.merged.payload,
        "a single node kill at r=2 must not change a byte"
    );
    assert_eq!(post_kill.merged.schema, healthy.merged.schema);
}
