//! Property-based guarantees of the columnar table image and the
//! disk-backed tier ladder: for **any** fixed-stride schema (every
//! column type, ragged row counts) the encode → open → re-materialize
//! cycle is byte-identical to the row-format oracle; any corrupted or
//! truncated image yields a typed [`CodecError`] (never a panic); and
//! a replicated fleet pool returns byte-identical results across
//! evict → restage → rebalance, sourced from whichever tier happens to
//! hold the slices.

use proptest::prelude::*;

use farview::prelude::*;
use farview_core::{BlockStore, FleetTieredPool, TierLevel, TieredPool};
use fv_data::{CodecError, Column, ColumnImage, ColumnType, TableBuilder};

/// A random fixed-stride schema: 1–6 columns drawn from every
/// [`ColumnType`], byte-string widths 1–12 (so rows are *not* always
/// word-aligned).
fn arb_schema() -> impl Strategy<Value = Schema> {
    prop::collection::vec(
        prop_oneof![
            Just(ColumnType::U64),
            Just(ColumnType::I64),
            Just(ColumnType::F64),
            (1usize..=12).prop_map(ColumnType::Bytes),
        ],
        1..=6,
    )
    .prop_map(|tys| {
        Schema::new(
            tys.into_iter()
                .enumerate()
                .map(|(i, ty)| Column {
                    name: format!("c{i}"),
                    ty,
                })
                .collect(),
        )
    })
}

/// Materialize one cell of type `ty` from a `u64` seed.
fn cell(ty: ColumnType, seed: u64) -> Value {
    match ty {
        ColumnType::U64 => Value::U64(seed),
        ColumnType::I64 => Value::I64(seed as i64),
        ColumnType::F64 => Value::F64((seed % 10_000) as f64 * 0.25),
        ColumnType::Bytes(w) => Value::Bytes(seed.to_le_bytes()[..w.min(8)].to_vec()),
    }
}

/// A random table over a random mixed-type schema with a ragged row
/// count in `1..=max_rows`.
fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    (arb_schema(), 1..=max_rows).prop_flat_map(|(schema, rows)| {
        let tys: Vec<ColumnType> = schema.columns().iter().map(|c| c.ty).collect();
        prop::collection::vec(prop::collection::vec(any::<u64>(), tys.len()), rows).prop_map(
            move |seeds| {
                let mut b = TableBuilder::with_capacity(schema.clone(), seeds.len());
                for row in seeds {
                    b.push_values(
                        row.into_iter()
                            .zip(&tys)
                            .map(|(s, &ty)| cell(ty, s))
                            .collect(),
                    );
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encode → open → re-materialize is the identity on the row image,
    /// and every column slice equals a hand gather off the row bytes.
    #[test]
    fn image_round_trips_any_fixed_stride_table(table in arb_table(96)) {
        let img = ColumnImage::encode(&table);
        let opened = ColumnImage::open(&img, table.schema()).expect("open a fresh image");
        prop_assert_eq!(opened.row_count(), table.row_count());

        let back = opened.to_table();
        prop_assert_eq!(back.bytes(), table.bytes());
        prop_assert_eq!(back.schema(), table.schema());

        let rb = table.schema().row_bytes();
        for c in 0..table.schema().column_count() {
            let slice = opened.col(c);
            let off = table.schema().offset(c);
            let w = table.schema().column(c).ty.width();
            let gathered: Vec<u8> = (0..table.row_count())
                .flat_map(|r| table.bytes()[r * rb + off..r * rb + off + w].to_vec())
                .collect();
            prop_assert_eq!(slice.bytes(), &gathered[..], "column {} slice diverged", c);
        }
    }

    /// A query answered off the disk tier (cold stage-in through the
    /// column image) is byte-identical to the same query against a
    /// directly loaded row table — for any fixed-stride schema.
    #[test]
    fn tiered_query_matches_direct_execution(
        table in arb_table(64),
        keep in any::<u64>(),
    ) {
        let col = keep as usize % table.schema().column_count();
        let specs = [
            PipelineSpec::passthrough(),
            PipelineSpec::passthrough().project(vec![col]),
        ];
        let c = FarviewCluster::new(FarviewConfig::tiny());
        let qp = c.connect().unwrap();
        let (ft, _) = qp.load_table(&table).unwrap();
        let mut pool = TieredPool::new(&qp, 8 << 20, BlockStore::default());
        pool.insert("t", &table).unwrap();
        for spec in &specs {
            let direct = qp.far_view(&ft, spec).unwrap();
            let tiered = pool.query("t", spec).unwrap();
            prop_assert_eq!(&tiered.outcome.payload, &direct.payload);
            prop_assert_eq!(&tiered.outcome.schema, &direct.schema);
        }
    }

    /// Any single-bit flip anywhere in an image is caught at
    /// [`ColumnImage::open`] as a typed [`CodecError`] — header,
    /// directory, data, and checksum bytes alike. Never a panic.
    #[test]
    fn bit_flips_yield_typed_errors(
        table in arb_table(48),
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut img = ColumnImage::encode(&table);
        let at = pos as usize % img.len();
        img[at] ^= 1 << bit;
        let res = ColumnImage::open(&img, table.schema());
        prop_assert!(
            res.is_err(),
            "flipping bit {} of byte {} went undetected",
            bit,
            at
        );
    }

    /// Every strict prefix of an image fails to open with a typed
    /// error; the boundary cases (empty buffer, header-only) included.
    #[test]
    fn truncation_yields_typed_errors(
        table in arb_table(48),
        cut in any::<u64>(),
    ) {
        let img = ColumnImage::encode(&table);
        let at = cut as usize % img.len(); // 0..len, strictly short of len
        let res = ColumnImage::open(&img[..at], table.schema());
        prop_assert!(res.is_err(), "truncation to {} bytes went undetected", at);
        // The shape of the error is part of the contract: truncation is
        // reported as a length problem, not a checksum coincidence.
        if at < 64 {
            prop_assert!(
                matches!(res, Err(CodecError::Truncated { .. })),
                "sub-header truncation must report Truncated, got {:?}",
                res
            );
        }
    }

    /// A replicated (`r = 2`) fleet pool returns byte-identical results
    /// through the full tier ladder: cold disk stage-in, eviction under
    /// DRAM pressure, cheap far-memory restage, and a topology
    /// rebalance (grow *and* shrink) that forces restaging into the
    /// current placement.
    #[test]
    fn fleet_replicated_tier_is_byte_identical_across_churn(
        table in arb_table(128),
        filler in arb_table(96),
    ) {
        let spec = PipelineSpec::passthrough();
        // Oracle: the same query on a plain single-node cluster.
        let c = FarviewCluster::new(FarviewConfig::tiny());
        let oqp = c.connect().unwrap();
        let (oft, _) = oqp.load_table(&table).unwrap();
        let oracle = oqp.far_view(&oft, &spec).unwrap();

        let fleet = FarviewFleet::new(3, FarviewConfig::tiny());
        let qp = fleet.connect().unwrap();
        // DRAM budget fits the larger of the two tables but never both,
        // so staging the filler always evicts the table under test.
        let budget = table.byte_len().max(filler.byte_len()) as u64;
        let mut pool =
            FleetTieredPool::new(&qp, budget, Partitioning::RowRange, BlockStore::default())
                .with_replication(2);
        pool.insert("t", &table).unwrap();
        pool.insert("filler", &filler).unwrap();

        // Cold: staged off the device.
        let cold = pool.query("t", &spec).unwrap();
        prop_assert_eq!(cold.staged_from, Some(TierLevel::Disk));
        prop_assert_eq!(&cold.outcome.merged.payload, &oracle.payload);

        // Evict it by staging the filler, then re-query: the far-memory
        // image satisfies the restage without device reads.
        pool.query("filler", &spec).unwrap();
        prop_assert!(!pool.is_resident("t"), "filler must evict the table");
        let again = pool.query("t", &spec).unwrap();
        prop_assert_eq!(again.staged_from, Some(TierLevel::FarMemory));
        prop_assert_eq!(again.slices_fetched, 0usize);
        prop_assert_eq!(&again.outcome.merged.payload, &oracle.payload);

        // Grow the fleet: the placement goes stale and the next query
        // restages onto the 4-node shard set.
        fleet.add_node();
        let grown = pool.query("t", &spec).unwrap();
        prop_assert!(grown.restaged, "epoch bump must force a restage");
        prop_assert_eq!(&grown.outcome.merged.payload, &oracle.payload);

        // Shrink it again (`r = 2` tolerates the loss): another epoch
        // bump, another restage, same bytes.
        let victim = fleet.add_node();
        fleet.remove_node(victim).unwrap();
        fleet.add_node();
        let reshuffled = pool.query("t", &spec).unwrap();
        prop_assert!(reshuffled.restaged);
        prop_assert_eq!(&reshuffled.outcome.merged.payload, &oracle.payload);
    }
}
