//! Chaos & degraded-network property suite: deterministic fault
//! injection across the fleet datapath.
//!
//! Every scenario class replays against the byte-identity oracle (a
//! single node holding the same rows) under one invariant:
//!
//! > **Byte-identical results or a clean typed [`FvError`] — never a
//! > wrong answer, never a panic.**
//!
//! The fault classes, injected per-link through the seeded
//! [`FaultPlan`] a [`FarviewFleet`] attaches via
//! [`FarviewFleet::degrade_node`]:
//!
//! * packet **loss** with bounded retry/backoff — costs latency, never
//!   bytes, until the retry budget exhausts (typed error);
//! * **delay spikes** — reordering-tolerant, bytes identical;
//! * **bandwidth caps** — strictly slower, bytes identical;
//! * full **partitions** — clean typed error unreplicated, transparent
//!   replica failover at `r = 2`;
//! * **truncated doorbell batches** — `FvError::IncompleteEpisode`,
//!   never a partial merge;
//! * a **slow replica** — raced reads pick the healthy copy, bytes
//!   identical;
//! * a node **killed mid-rebalance** — the epoch flip completes or
//!   rolls back, and the old handle keeps serving.
//!
//! The composed [`ChaosScenarioGen`] schedules (faults × membership)
//! replay across a ≥64-seed matrix at the bottom of the file.

use proptest::prelude::*;

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec, Executor, PredicateExpr};
use fv_bench::fault_plan_for;
use fv_data::{Schema, Table, TableBuilder, Value};
use fv_workload::{ChaosEvent, ChaosScenarioGen, FaultSpec};

/// A random small table: 3 u64 columns with bounded values so groups,
/// predicates and hash keys are non-degenerate. At least 2 rows so a
/// 2-node `RowRange` split puts data on every node.
fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec(prop::collection::vec(0u64..64, 3), 2..=max_rows).prop_map(|rows| {
        let schema = Schema::uniform_u64(3);
        let mut b = TableBuilder::with_capacity(schema, rows.len());
        for r in rows {
            b.push_values(r.into_iter().map(Value::U64).collect());
        }
        b.build()
    })
}

/// The query mix: one of each merge shape.
fn specs() -> Vec<PipelineSpec> {
    vec![
        PipelineSpec::passthrough(),
        PipelineSpec::passthrough().filter(PredicateExpr::lt(1, 32u64)),
        PipelineSpec::passthrough().distinct(vec![0]),
        PipelineSpec::passthrough().group_by(
            vec![0],
            vec![
                AggSpec {
                    col: 2,
                    func: AggFunc::Sum,
                },
                AggSpec {
                    col: 2,
                    func: AggFunc::Avg,
                },
            ],
        ),
    ]
}

/// The byte-identity oracle: the same rows on one healthy node.
fn oracle_results(table: &Table) -> Vec<Vec<u8>> {
    let single = FarviewCluster::new(FarviewConfig::tiny());
    let sqp = single.connect().unwrap();
    let (sft, _) = sqp.load_table(table).unwrap();
    specs()
        .iter()
        .map(|s| sqp.far_view(&sft, s).unwrap().payload)
        .collect()
}

/// A degraded fleet: `nodes` nodes, `replicas` copies per shard, the
/// fault plan installed on the first node *after* a clean load.
fn degraded_fleet(
    table: &Table,
    nodes: usize,
    replicas: usize,
    plan: &farview_core::FaultPlan,
) -> (FarviewFleet, FleetQPair, FleetTable) {
    let fleet = FarviewFleet::new(nodes, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (ft, _) = qp
        .load_table_replicated(table, Partitioning::RowRange, replicas)
        .unwrap();
    let victim = fleet.node_ids()[0];
    fleet.degrade_node(victim, plan.clone()).unwrap();
    (fleet, qp, ft)
}

/// A replica-local typed error — the only error shapes the fleet read
/// path is allowed to surface under link faults.
fn is_typed_fault(e: &FvError) -> bool {
    matches!(
        e,
        FvError::Net(_) | FvError::IncompleteEpisode { .. } | FvError::NodeDown { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Packet loss with a bounded retry budget, unreplicated: every
    /// query either completes byte-identical to the oracle (loss costs
    /// latency, never bytes) or fails with a clean typed error
    /// (retries exhausted) — never a wrong answer, never a panic.
    #[test]
    fn loss_is_byte_identical_or_typed(
        table in arb_table(96),
        loss_pct in 5u8..45,
        max_retries in 0u32..34,
        seed in 0u64..1024,
    ) {
        let plan = fault_plan_for(&FaultSpec::Loss { loss_pct, max_retries }, seed);
        let oracle = oracle_results(&table);
        let (_fleet, qp, ft) = degraded_fleet(&table, 2, 1, &plan);
        for (i, spec) in specs().iter().enumerate() {
            match qp.far_view(&ft, spec) {
                Ok(out) => prop_assert_eq!(&out.merged.payload, &oracle[i], "loss changed bytes"),
                Err(e) => prop_assert!(is_typed_fault(&e), "untyped failure: {}", e),
            }
        }
    }

    /// Delay spikes reorder and slow packets but never corrupt: every
    /// query completes byte-identical, at least as slow as the clean
    /// run (spikes only ever add latency).
    #[test]
    fn delay_spikes_preserve_bytes_and_only_add_latency(
        table in arb_table(96),
        spike_pct in 10u8..=100,
        spike_us in 5u32..500,
        seed in 0u64..1024,
    ) {
        let plan = fault_plan_for(&FaultSpec::DelaySpikes { spike_pct, spike_us }, seed);
        let oracle = oracle_results(&table);
        let clean = {
            let fleet = FarviewFleet::new(2, FarviewConfig::tiny());
            let qp = fleet.connect().unwrap();
            let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
            specs().iter().map(|s| qp.far_view(&ft, s).unwrap().merged.stats.response_time).collect::<Vec<_>>()
        };
        let (_fleet, qp, ft) = degraded_fleet(&table, 2, 1, &plan);
        for (i, spec) in specs().iter().enumerate() {
            let out = qp.far_view(&ft, spec).unwrap();
            prop_assert_eq!(&out.merged.payload, &oracle[i], "spikes changed bytes");
            prop_assert!(
                out.merged.stats.response_time >= clean[i],
                "spikes made a query faster: {:?} < {:?}",
                out.merged.stats.response_time, clean[i]
            );
        }
    }

    /// A bandwidth cap throttles the degraded link but never corrupts:
    /// byte-identical results, response time at least the clean run's.
    #[test]
    fn bandwidth_cap_preserves_bytes_and_slows(
        table in arb_table(96),
        cap_pct in 5u8..=100,
    ) {
        let plan = fault_plan_for(&FaultSpec::BandwidthCap { cap_pct }, 1);
        let oracle = oracle_results(&table);
        let clean = {
            let fleet = FarviewFleet::new(2, FarviewConfig::tiny());
            let qp = fleet.connect().unwrap();
            let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
            specs().iter().map(|s| qp.far_view(&ft, s).unwrap().merged.stats.response_time).collect::<Vec<_>>()
        };
        let (_fleet, qp, ft) = degraded_fleet(&table, 2, 1, &plan);
        for (i, spec) in specs().iter().enumerate() {
            let out = qp.far_view(&ft, spec).unwrap();
            prop_assert_eq!(&out.merged.payload, &oracle[i], "cap changed bytes");
            prop_assert!(out.merged.stats.response_time >= clean[i]);
        }
    }

    /// A partitioned shard without a replica is a clean typed error —
    /// the query returns (this test terminating *is* the no-hang
    /// proof; the episode engine's quiescence bound backstops it).
    #[test]
    fn partition_unreplicated_fails_typed_never_hangs(table in arb_table(96)) {
        let plan = fault_plan_for(&FaultSpec::Partition, 1);
        let (_fleet, qp, ft) = degraded_fleet(&table, 2, 1, &plan);
        for spec in &specs() {
            match qp.far_view(&ft, spec) {
                Ok(_) => prop_assert!(false, "a partitioned sole replica cannot answer"),
                Err(e) => prop_assert!(is_typed_fault(&e), "untyped failure: {}", e),
            }
        }
    }

    /// With `r = 2`, a full partition of one node is invisible: reads
    /// fail over to the surviving replica, byte-identically.
    #[test]
    fn partition_replicated_fails_over_byte_identically(table in arb_table(96)) {
        let plan = fault_plan_for(&FaultSpec::Partition, 1);
        let oracle = oracle_results(&table);
        let (_fleet, qp, ft) = degraded_fleet(&table, 3, 2, &plan);
        for (i, spec) in specs().iter().enumerate() {
            let out = qp.far_view(&ft, spec).unwrap();
            prop_assert_eq!(&out.merged.payload, &oracle[i], "failover changed bytes");
        }
    }

    /// A truncated doorbell batch never merges partial results: the
    /// unfetched episodes surface `FvError::IncompleteEpisode` (or the
    /// wrapped net error) unreplicated, and fail over byte-identically
    /// at `r = 2`.
    #[test]
    fn truncated_doorbell_is_incomplete_or_failed_over(
        table in arb_table(96),
        deliver in 1u32..3,
    ) {
        let plan = fault_plan_for(&FaultSpec::TruncateDoorbell { deliver }, 1);
        let oracle = oracle_results(&table);
        let specs = specs();

        // Unreplicated: the batch posts more WQEs than the NIC
        // fetches, so the batch fails typed — never a partial merge.
        let (_f1, qp1, ft1) = degraded_fleet(&table, 2, 1, &plan);
        match Executor::fleet(&qp1, &ft1, &specs) {
            Ok(_) => prop_assert!(false, "truncated batch must not complete unreplicated"),
            Err(e) => prop_assert!(is_typed_fault(&e), "untyped failure: {}", e),
        }

        // Replicated: failover to the healthy replica, byte-identical.
        let (_f2, qp2, ft2) = degraded_fleet(&table, 3, 2, &plan);
        let outs = Executor::fleet(&qp2, &ft2, &specs).unwrap();
        for (i, out) in outs.iter().enumerate() {
            prop_assert_eq!(&out.merged.payload, &oracle[i], "truncation leaked partial bytes");
        }
    }

    /// Slow replica: with one copy behind heavy delay spikes, racing
    /// every replica (the seed-reference executor) picks a winner whose
    /// bytes are identical to the oracle's.
    #[test]
    fn slow_replica_race_is_byte_identical(
        table in arb_table(96),
        seed in 0u64..1024,
    ) {
        let plan = fault_plan_for(
            &FaultSpec::DelaySpikes { spike_pct: 90, spike_us: 400 },
            seed,
        );
        let oracle = oracle_results(&table);
        let (_fleet, qp, ft) = degraded_fleet(&table, 3, 2, &plan);
        let specs = specs();
        let outs = Executor::fleet_seed_reference(&qp, &ft, &specs).unwrap();
        for (i, out) in outs.iter().enumerate() {
            prop_assert_eq!(&out.merged.payload, &oracle[i], "raced read changed bytes");
        }
    }

    /// The replica race's tie-break is a deterministic total order:
    /// strictly lower latency wins, equal latency falls back to the
    /// smaller `NodeId` — so exactly one of any two distinct candidates
    /// beats the other, and nothing beats itself.
    #[test]
    fn replica_race_tie_break_is_a_total_order(
        a_id in 0u64..16, b_id in 0u64..16,
        a_ns in 0u64..50, b_ns in 0u64..50,
    ) {
        use farview_core::replica_beats;
        let a = (NodeId(a_id), SimDuration::from_nanos(a_ns));
        let b = (NodeId(b_id), SimDuration::from_nanos(b_ns));
        prop_assert!(!replica_beats(a, a), "nothing beats itself");
        if a != b {
            prop_assert!(
                replica_beats(a, b) != replica_beats(b, a),
                "exactly one of two distinct candidates must win"
            );
        }
        if a_ns == b_ns && a_id != b_id {
            let winner = if replica_beats(a, b) { a_id } else { b_id };
            prop_assert_eq!(winner, a_id.min(b_id), "latency ties break by smaller NodeId");
        }
    }
}

/// Build the standard 64-row chaos table (tenant-shaped: c0 group key,
/// c1 calibrated selectivity, c2 aggregation payload).
fn chaos_table(seed: u64) -> Table {
    fv_workload::TableGen::new(8, 64)
        .seed(seed)
        .distinct_column(0, 8)
        .selectivity_column(1, 0.5)
        .sequential_column(2)
        .build()
}

/// Replay one composed chaos schedule end to end against the oracle:
/// query bursts under injected faults, heals, and membership events
/// with a rebalance after each — every query byte-identical to a
/// single healthy node holding the same rows.
fn replay_chaos_scenario(seed: u64) {
    let scenario = ChaosScenarioGen::new(2, 4)
        .queries_per_phase(3)
        .with_membership()
        .with_all_faults()
        .seed(seed)
        .build();
    let table = chaos_table(seed ^ 0x7AB1E);

    let single = FarviewCluster::new(FarviewConfig::tiny());
    let sqp = single.connect().unwrap();
    let (sft, _) = sqp.load_table(&table).unwrap();

    let fleet = FarviewFleet::new(scenario.initial_nodes, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (mut ft, _) = qp
        .load_table_replicated(&table, Partitioning::RowRange, scenario.replicas)
        .unwrap();

    let rebalance = |ft: &mut FleetTable| {
        let (new_ft, _) = qp.rebalance(ft).unwrap();
        let old = std::mem::replace(ft, new_ft);
        qp.free_table(old).unwrap();
    };
    for event in &scenario.events {
        match event {
            ChaosEvent::Queries(qs) => {
                for q in qs {
                    let spec = fv_bench::tenant_query_spec(q);
                    let out = qp.far_view(&ft, &spec).unwrap_or_else(|e| {
                        panic!("seed {seed}: query under chaos failed untyped-or-unsurvivable: {e}")
                    });
                    let reference = sqp.far_view(&sft, &spec).unwrap();
                    assert_eq!(
                        out.merged.payload, reference.payload,
                        "seed {seed}: chaos fleet diverged from the oracle on {q:?}"
                    );
                }
            }
            ChaosEvent::AddNode => {
                fleet.add_node();
                rebalance(&mut ft);
            }
            ChaosEvent::DrainNode(i) => {
                let id = fleet.node_ids()[*i];
                fleet.drain_node(id).unwrap();
                rebalance(&mut ft);
                fleet.remove_node(id).unwrap();
            }
            ChaosEvent::KillNode(i) => {
                let id = fleet.node_ids()[*i];
                fleet.remove_node(id).unwrap();
                rebalance(&mut ft);
            }
            ChaosEvent::Degrade(i, spec) => {
                let id = fleet.node_ids()[*i];
                fleet.degrade_node(id, fault_plan_for(spec, seed)).unwrap();
            }
            ChaosEvent::Heal(i) => {
                let id = fleet.node_ids()[*i];
                fleet.heal_node(id).unwrap();
            }
        }
    }
    qp.free_table(ft).unwrap();
}

/// The headline matrix: 64 seeded schedules composing every fault
/// class with membership churn, each replayed deterministically
/// against the byte-identity oracle. Zero panics, zero divergence.
#[test]
fn chaos_scenarios_replay_byte_identically_across_64_seeds() {
    for seed in 0..64 {
        replay_chaos_scenario(seed);
    }
}

/// One extra randomized schedule: CI exports `CHAOS_SEED` so a failure
/// prints the seed to replay locally (`CHAOS_SEED=n cargo test`).
#[test]
fn chaos_scenario_replays_at_env_seed() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A0_5u64);
    eprintln!("replaying chaos schedule at CHAOS_SEED={seed}");
    replay_chaos_scenario(seed);
}

/// Kill mid-rebalance, source side: the sole source of every moved row
/// partitions away mid-flip. The rebalance aborts with a clean typed
/// error, and after healing, the old handle still serves byte-identical
/// results and the retried flip completes, matching a fresh fleet.
#[test]
fn source_killed_mid_rebalance_rolls_back_then_completes_after_heal() {
    let table = chaos_table(11);
    let oracle = oracle_results(&table);

    let fleet = FarviewFleet::new(1, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
    let source = fleet.node_ids()[0];
    fleet.add_node();

    // The only holder of every row dies (full partition) before the
    // copy phase streams them out: typed error, no partial flip.
    fleet
        .degrade_node(source, fault_plan_for(&FaultSpec::Partition, 3))
        .unwrap();
    let err = qp.rebalance(&ft).unwrap_err();
    assert!(is_typed_fault(&err), "untyped mid-rebalance failure: {err}");

    // Heal: the old handle never stopped being authoritative.
    fleet.heal_node(source).unwrap();
    for (i, spec) in specs().iter().enumerate() {
        assert_eq!(qp.far_view(&ft, spec).unwrap().merged.payload, oracle[i]);
    }
    // And the retried flip completes, matching a fresh 2-node fleet.
    let (new_ft, report) = qp.rebalance(&ft).unwrap();
    assert!(report.moved_rows > 0, "the grow must move rows");
    for (i, spec) in specs().iter().enumerate() {
        assert_eq!(
            qp.far_view(&new_ft, spec).unwrap().merged.payload,
            oracle[i]
        );
    }
    qp.free_table(ft).unwrap();
    qp.free_table(new_ft).unwrap();
}

/// Kill mid-rebalance, target side: the node the flip writes new shard
/// images to partitions away. The write phase fails typed, every new
/// allocation rolls back (no page leak), the old handle keeps serving,
/// and after healing the flip completes.
#[test]
fn target_killed_mid_rebalance_rolls_back_allocations() {
    let table = chaos_table(12);
    let oracle = oracle_results(&table);

    let fleet = FarviewFleet::new(2, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
    let target = fleet.add_node();
    let free_before = fleet.free_pages();

    fleet
        .degrade_node(target, fault_plan_for(&FaultSpec::Partition, 3))
        .unwrap();
    let err = qp.rebalance(&ft).unwrap_err();
    assert!(is_typed_fault(&err), "untyped mid-rebalance failure: {err}");
    assert_eq!(
        fleet.free_pages(),
        free_before,
        "an aborted flip must roll back every new allocation"
    );

    // Old epoch untouched; heal and complete the flip.
    for (i, spec) in specs().iter().enumerate() {
        assert_eq!(qp.far_view(&ft, spec).unwrap().merged.payload, oracle[i]);
    }
    fleet.heal_node(target).unwrap();
    let (new_ft, _) = qp.rebalance(&ft).unwrap();
    for (i, spec) in specs().iter().enumerate() {
        assert_eq!(
            qp.far_view(&new_ft, spec).unwrap().merged.payload,
            oracle[i]
        );
    }
    qp.free_table(ft).unwrap();
    qp.free_table(new_ft).unwrap();
}

/// Fleet read path with no survivors: killing the sole holder at
/// `r = 1` surfaces `FvError::NodeDown` on the next query — a typed
/// error from the lazy per-node connect path, not a panic.
#[test]
fn query_after_sole_holder_killed_is_typed_node_down() {
    let table = chaos_table(13);
    let fleet = FarviewFleet::new(2, FarviewConfig::tiny());
    let qp = fleet.connect().unwrap();
    let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
    let victim = fleet.node_ids()[0];
    fleet.remove_node(victim).unwrap();
    for spec in &specs() {
        match qp.far_view(&ft, spec) {
            Ok(_) => panic!("a shard with its only holder dead cannot answer"),
            Err(e) => assert!(
                matches!(e, FvError::NodeDown { .. }),
                "want NodeDown, got {e}"
            ),
        }
    }
}

/// Chaos × overload composition: every fault class a composed
/// [`ChaosScenarioGen`] schedule degrades a node with is replayed under
/// the multi-tenant serving layer on an `r = 2` fleet. The serving
/// invariants hold behind every degradation: no tenant starves, the
/// weight-normalized fairness index keeps its DRR floor, gold is never
/// shed, and every failure is a counted typed outcome — never a panic.
#[test]
fn serving_invariants_hold_under_scenario_faults() {
    use farview_core::{FleetBackend, ServeClass, ServeConfig, ServeEngine};

    let seed = 0x5E7E_u64;
    let scenario = ChaosScenarioGen::new(3, 8)
        .queries_per_phase(1)
        .with_all_faults()
        .seed(seed)
        .build();
    let mix = fv_workload::TenantMixGen::new(8)
        .queries_per_tenant(4)
        .overdemand(3, 4)
        .seed(seed)
        .build();
    let tenants = fv_bench::serve_tenants(&mix);
    let mut exercised = 0usize;
    for event in &scenario.events {
        let ChaosEvent::Degrade(node, spec) = event else {
            continue;
        };
        exercised += 1;
        let fleet = FarviewFleet::new(3, FarviewConfig::default());
        let qp = fleet.connect().unwrap();
        let mut backend = FleetBackend::new(qp);
        for t in &mix.tenants {
            let table = chaos_table(seed ^ (t.id as u64 + 1));
            let (ft, _) = backend
                .load_table_replicated(&table, Partitioning::RowRange, 2)
                .unwrap();
            backend.bind_tenant(t.id as u32, ft, table.byte_len() as u64);
        }
        let victim = fleet.node_ids()[node % fleet.node_ids().len()];
        fleet
            .degrade_node(victim, fault_plan_for(spec, seed))
            .unwrap();
        let config = ServeConfig {
            servers: 2,
            queue_capacity: 8,
            bucket_qps_per_weight: 100_000.0,
            load: 8.0,
            seed,
            horizon: SimDuration::from_millis(3),
            ..ServeConfig::default()
        };
        let report = ServeEngine::new(&tenants, config, backend).unwrap().run();
        let class = spec.class_name();
        assert!(
            report.min_completed > 0,
            "{class}: a degraded replica starved a tenant"
        );
        assert!(
            report.fairness_index >= 0.5,
            "{class}: fairness {} broke the DRR bound behind a fault",
            report.fairness_index
        );
        assert!(
            report.completed + report.deadline_missed + report.abandoned + report.exec_failed
                <= report.offered,
            "{class}: final outcomes exceed offered work"
        );
        for t in &report.tenants {
            if t.class == ServeClass::Gold {
                assert_eq!(t.shed, 0, "{class}: gold tenant {} was shed", t.tenant);
            }
        }
    }
    assert!(
        exercised >= 3,
        "schedule composed too few degrade events ({exercised})"
    );
}
