//! Property-based cross-validation: the FPGA-side operator pipeline and
//! the CPU baseline engine are two independent implementations of the
//! same query semantics over the same byte format. For random tables and
//! random queries they must agree.

use proptest::prelude::*;

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec, PipelineSpec, PredicateExpr};
use fv_data::{Schema, TableBuilder, Value};

fn cluster() -> FarviewCluster {
    FarviewCluster::new(FarviewConfig::tiny())
}

/// A random small table: `cols` u64 columns, values bounded so that
/// predicates and groups are non-degenerate.
fn arb_table(max_rows: usize, cols: usize, value_bound: u64) -> impl Strategy<Value = Table> {
    prop::collection::vec(prop::collection::vec(0..value_bound, cols), 1..=max_rows).prop_map(
        move |rows| {
            let schema = Schema::uniform_u64(cols);
            let mut b = TableBuilder::with_capacity(schema, rows.len());
            for r in rows {
                b.push_values(r.into_iter().map(Value::U64).collect());
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Selection: FV offload == CPU engine, byte for byte.
    #[test]
    fn selection_agrees(
        table in arb_table(300, 4, 1000),
        threshold in 0u64..1000,
        col in 0usize..4,
    ) {
        let pred = PredicateExpr::lt(col, threshold);
        let c = cluster();
        let qp = c.connect().unwrap();
        let (ft, _) = qp.load_table(&table).unwrap();
        let fv = qp.far_view(&ft, &PipelineSpec::passthrough().filter(pred.clone())).unwrap();
        let cpu = CpuEngine::new(BaselineKind::Lcpu).select(&table, &pred, None);
        prop_assert_eq!(fv.payload, cpu.payload);
    }

    /// Complex predicates (AND/OR/NOT) agree too.
    #[test]
    fn complex_predicates_agree(
        table in arb_table(200, 3, 50),
        a in 0u64..50,
        b in 0u64..50,
        d in 0u64..50,
    ) {
        let pred = PredicateExpr::lt(0, a)
            .or(PredicateExpr::gt(1, b))
            .and(PredicateExpr::Not(Box::new(PredicateExpr::eq(2, d))));
        let c = cluster();
        let qp = c.connect().unwrap();
        let (ft, _) = qp.load_table(&table).unwrap();
        let fv = qp.far_view(&ft, &PipelineSpec::passthrough().filter(pred.clone())).unwrap();
        let cpu = CpuEngine::new(BaselineKind::Lcpu).select(&table, &pred, None);
        prop_assert_eq!(fv.payload, cpu.payload);
    }

    /// Distinct: same key set (FV may add overflow duplicates, which the
    /// client dedups — compare sets), and with the default geometry the
    /// small key space must produce no overflow at all.
    #[test]
    fn distinct_agrees(table in arb_table(400, 2, 64)) {
        let c = cluster();
        let qp = c.connect().unwrap();
        let (ft, _) = qp.load_table(&table).unwrap();
        let fv = qp.distinct(&ft, vec![0]).unwrap();
        let cpu = CpuEngine::new(BaselineKind::Lcpu).distinct(&table, &[0]);
        prop_assert_eq!(fv.stats.overflow_tuples, 0);
        prop_assert_eq!(fv.payload, cpu.payload, "no overflow -> identical order");
    }

    /// Group-by with all five aggregate functions agrees byte-for-byte.
    #[test]
    fn group_by_agrees(
        table in arb_table(300, 3, 40),
        func in prop::sample::select(vec![
            AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg,
        ]),
    ) {
        let aggs = vec![AggSpec { col: 2, func }];
        let c = cluster();
        let qp = c.connect().unwrap();
        let (ft, _) = qp.load_table(&table).unwrap();
        let fv = qp.group_by(&ft, vec![0], aggs.clone()).unwrap();
        let cpu = CpuEngine::new(BaselineKind::Lcpu).group_by(&table, &[0], &aggs);
        prop_assert_eq!(fv.payload, cpu.payload);
    }

    /// Projection in arbitrary (duplicate-free, like the paper's
    /// projection-flag bitmask) column order agrees.
    #[test]
    fn projection_agrees(
        table in arb_table(200, 5, 1000),
        cols in prop::collection::hash_set(0usize..5, 1..=4)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
    ) {
        let c = cluster();
        let qp = c.connect().unwrap();
        let (ft, _) = qp.load_table(&table).unwrap();
        let fv = qp.far_view(&ft, &PipelineSpec::passthrough().project(cols.clone())).unwrap();
        let cpu = CpuEngine::new(BaselineKind::Lcpu)
            .select(&table, &PredicateExpr::True, Some(&cols));
        prop_assert_eq!(fv.payload, cpu.payload);
    }

    /// A passthrough offload is an identity on arbitrary byte images.
    #[test]
    fn passthrough_is_identity(table in arb_table(256, 8, u64::MAX)) {
        let c = cluster();
        let qp = c.connect().unwrap();
        let (ft, _) = qp.load_table(&table).unwrap();
        let out = qp.table_read(&ft).unwrap();
        prop_assert_eq!(out.payload.as_slice(), table.bytes());
    }

    /// Vectorization is timing-only: identical results at any lane count.
    #[test]
    fn vectorization_is_pure(
        table in arb_table(200, 2, 100),
        threshold in 0u64..100,
    ) {
        let pred = PredicateExpr::lt(0, threshold);
        let c = cluster();
        let qp = c.connect().unwrap();
        let (ft, _) = qp.load_table(&table).unwrap();
        let scalar = qp.far_view(&ft, &PipelineSpec::passthrough().filter(pred.clone())).unwrap();
        let vector = qp
            .far_view(&ft, &PipelineSpec::passthrough().filter(pred).vectorized())
            .unwrap();
        prop_assert_eq!(scalar.payload, vector.payload);
        prop_assert!(vector.stats.response_time <= scalar.stats.response_time);
    }
}
