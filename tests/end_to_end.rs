//! End-to-end integration tests across the whole stack: client API →
//! network stack → operator stack → MMU → DRAM and back.

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec, CryptoSpec, FvError, PipelineSpec, PredicateExpr};
use fv_workload::{encrypt_table, StringTableGen, TableGen, REGEX_PATTERN, SELECTIVITY_PIVOT};

fn small_cluster() -> FarviewCluster {
    FarviewCluster::new(FarviewConfig::tiny())
}

#[test]
fn full_lifecycle_alloc_write_query_free() {
    let cluster = small_cluster();
    let qp = cluster.connect().unwrap();
    let pages_before = cluster.free_pages();

    let table = TableGen::paper_default(128 << 10).seed(1).build();
    let (ft, write_time) = qp.load_table(&table).unwrap();
    assert!(write_time > SimDuration::ZERO);
    assert!(cluster.free_pages() < pages_before);

    let out = qp.table_read(&ft).unwrap();
    assert_eq!(out.payload, table.bytes());
    assert_eq!(out.stats.result_bytes, 128 << 10);
    assert_eq!(out.stats.bytes_from_memory, 128 << 10);
    assert!(
        out.stats.bytes_on_wire > out.stats.result_bytes,
        "headers cost wire bytes"
    );

    qp.free_table(ft).unwrap();
    assert_eq!(
        cluster.free_pages(),
        pages_before,
        "pages must return to the pool"
    );
}

#[test]
fn all_regions_assignable_and_recyclable() {
    let cluster = FarviewCluster::new(FarviewConfig::default());
    let qps: Vec<_> = (0..6).map(|_| cluster.connect().unwrap()).collect();
    let err = cluster.connect().expect_err("all six regions taken");
    assert!(matches!(err, FvError::NoFreeRegion { regions: 6, .. }));
    assert!(
        err.is_retryable(),
        "region exhaustion must carry a retry_after backpressure hint"
    );
    drop(qps);
    // All six come back.
    let again: Vec<_> = (0..6).map(|_| cluster.connect().unwrap()).collect();
    assert_eq!(again.len(), 6);
}

#[test]
fn offloading_reduces_wire_traffic_proportionally() {
    let cluster = small_cluster();
    let qp = cluster.connect().unwrap();
    let table = TableGen::paper_default(512 << 10)
        .seed(2)
        .selectivity_column(0, 0.25)
        .build();
    let (ft, _) = qp.load_table(&table).unwrap();

    let full = qp.table_read(&ft).unwrap();
    let sel = qp
        .select(
            &ft,
            &SelectQuery::all_columns().and_lt(0, SELECTIVITY_PIVOT),
        )
        .unwrap();
    let wire_ratio = sel.stats.bytes_on_wire as f64 / full.stats.bytes_on_wire as f64;
    assert!(
        (0.2..0.32).contains(&wire_ratio),
        "25% selectivity should move ~25% of the bytes, got {wire_ratio}"
    );
    assert!(sel.stats.response_time < full.stats.response_time);
    // Both scanned the whole table inside the memory.
    assert_eq!(sel.stats.bytes_from_memory, full.stats.bytes_from_memory);
}

#[test]
fn projection_plus_selection_compose() {
    let cluster = small_cluster();
    let qp = cluster.connect().unwrap();
    let table = TableGen::paper_default(64 << 10).seed(3).build();
    let (ft, _) = qp.load_table(&table).unwrap();

    // Project two columns, filter on a third (annotations carry the
    // predicate column through the pipeline even though it is projected
    // away at packing, §5.2).
    let spec = PipelineSpec::passthrough()
        .project(vec![7, 2])
        .filter(PredicateExpr::lt(4, 1u64 << 62));
    let out = qp.far_view(&ft, &spec).unwrap();
    assert_eq!(out.schema.column_count(), 2);
    assert_eq!(out.schema.column(0).name, "c7");
    // Oracle: filter + project by hand.
    let expected: usize = table
        .rows()
        .filter(|r| r.value(4).as_u64() < (1u64 << 62))
        .count();
    assert_eq!(out.row_count(), expected);
}

#[test]
fn group_by_matches_cpu_engine_exactly() {
    let cluster = small_cluster();
    let qp = cluster.connect().unwrap();
    let table = TableGen::paper_default(256 << 10)
        .seed(4)
        .distinct_column(0, 97)
        .distinct_column(1, 1000)
        .build();
    let (ft, _) = qp.load_table(&table).unwrap();

    let aggs = vec![
        AggSpec {
            col: 1,
            func: AggFunc::Sum,
        },
        AggSpec {
            col: 1,
            func: AggFunc::Count,
        },
        AggSpec {
            col: 1,
            func: AggFunc::Min,
        },
        AggSpec {
            col: 1,
            func: AggFunc::Max,
        },
        AggSpec {
            col: 1,
            func: AggFunc::Avg,
        },
    ];
    let fv = qp.group_by(&ft, vec![0], aggs.clone()).unwrap();
    let cpu = CpuEngine::new(BaselineKind::Lcpu).group_by(&table, &[0], &aggs);
    // Byte-for-byte identical: same first-seen order, same encodings —
    // two independent engine implementations cross-validate.
    assert_eq!(fv.payload, cpu.payload);
    assert_eq!(fv.stats.groups_flushed, 97);
    assert_eq!(fv.stats.overflow_tuples, 0);
}

#[test]
fn regex_offload_matches_cpu_engine() {
    let cluster = small_cluster();
    let qp = cluster.connect().unwrap();
    let table = StringTableGen::new(500, 64)
        .seed(5)
        .match_fraction(0.3)
        .build();
    let (ft, _) = qp.load_table(&table).unwrap();
    let fv = qp.regex_match(&ft, 1, REGEX_PATTERN).unwrap();
    let cpu = CpuEngine::new(BaselineKind::Lcpu).regex_match(&table, 1, REGEX_PATTERN);
    assert_eq!(fv.payload, cpu.payload);
    let rate = fv.row_count() as f64 / 500.0;
    assert!((0.2..0.4).contains(&rate), "match rate calibration: {rate}");
}

#[test]
fn encrypted_pipeline_composition() {
    // decrypt -> filter -> (pack) -> encrypt: data is ciphertext at rest
    // AND ciphertext on the wire; only the client can read the result.
    let cluster = small_cluster();
    let qp = cluster.connect().unwrap();
    let rest_key = CryptoSpec {
        key: [1; 16],
        iv: [2; 16],
    };
    let wire_key = CryptoSpec {
        key: [3; 16],
        iv: [4; 16],
    };

    let plain = TableGen::paper_default(64 << 10).seed(6).build();
    let encrypted = encrypt_table(&plain, &rest_key.key, &rest_key.iv);
    let (ft, _) = qp.load_table(&encrypted).unwrap();

    let spec = PipelineSpec::passthrough()
        .decrypt(rest_key)
        .filter(PredicateExpr::lt(0, 1u64 << 62))
        .encrypt(wire_key.clone());
    let out = qp.far_view(&ft, &spec).unwrap();

    // Decrypt the wire stream client-side.
    let mut result = out.payload.clone();
    fv_crypto::ctr_apply_at(&wire_key.key, &wire_key.iv, 0, &mut result);
    let expected =
        CpuEngine::new(BaselineKind::Lcpu).select(&plain, &PredicateExpr::lt(0, 1u64 << 62), None);
    assert_eq!(result, expected.payload);
    assert_ne!(
        out.payload, expected.payload,
        "wire payload must be ciphertext"
    );
}

#[test]
fn shared_table_queried_by_two_clients() {
    let cluster = small_cluster();
    let a = cluster.connect().unwrap();
    let b = cluster.connect().unwrap();
    let table = TableGen::paper_default(64 << 10).seed(7).build();
    let (ft_a, _) = a.load_table(&table).unwrap();
    let ft_b = a.share_table(&ft_a, &b).unwrap();

    // Both run different queries over the same physical pages.
    let ra = a
        .select(&ft_a, &SelectQuery::all_columns().and_lt(0, 1u64 << 62))
        .unwrap();
    let rb = b.distinct(&ft_b, vec![0]).unwrap();
    assert!(ra.row_count() > 0);
    assert!(rb.row_count() > 0);

    // Owner frees; the share must stay readable (refcounted pages).
    a.free_table(ft_a).unwrap();
    let rb2 = b.table_read(&ft_b).unwrap();
    assert_eq!(rb2.payload, table.bytes());
}

#[test]
fn smart_addressing_equals_standard_projection() {
    let cluster = small_cluster();
    let qp = cluster.connect().unwrap();
    let table = TableGen::new(64, 512).seed(8).build(); // 512 B rows
    let (ft, _) = qp.load_table(&table).unwrap();
    let std_out = qp
        .far_view(&ft, &PipelineSpec::passthrough().project(vec![10, 11, 12]))
        .unwrap();
    let sa_out = qp
        .far_view(
            &ft,
            &PipelineSpec::passthrough()
                .project(vec![10, 11, 12])
                .with_smart_addressing(),
        )
        .unwrap();
    assert_eq!(
        std_out.payload, sa_out.payload,
        "SA must be a pure optimization"
    );
    assert!(
        sa_out.stats.bytes_from_memory < std_out.stats.bytes_from_memory,
        "SA must read fewer bytes: {} vs {}",
        sa_out.stats.bytes_from_memory,
        std_out.stats.bytes_from_memory
    );
}

#[test]
fn error_paths_are_reported() {
    let cluster = small_cluster();
    let a = cluster.connect().unwrap();
    let b = cluster.connect().unwrap();
    let table = TableGen::paper_default(64 << 10).build();
    let (ft, _) = a.load_table(&table).unwrap();

    // Foreign handle.
    assert!(matches!(b.table_read(&ft), Err(FvError::ForeignTable)));
    // Bad pipeline (regex on a numeric column).
    assert!(matches!(
        a.far_view(&ft, &PipelineSpec::passthrough().regex_match(0, "x")),
        Err(FvError::Pipeline(_))
    ));
    // Bad predicate column.
    assert!(matches!(
        a.select(&ft, &SelectQuery::all_columns().and_lt(99, 0u64)),
        Err(FvError::Pipeline(_))
    ));
    // Wrong write size.
    let ft2 = a.alloc_table(&table).unwrap();
    assert!(matches!(
        a.table_write(&ft2, &table.bytes()[..100]),
        Err(FvError::WriteSizeMismatch { .. })
    ));
    // Disconnected use.
    let ft3 = b.alloc_table_spec(table.schema(), 10).unwrap();
    b.disconnect();
    let c = cluster.connect().unwrap();
    assert!(matches!(c.table_read(&ft3), Err(FvError::ForeignTable)));
}

#[test]
fn empty_and_tiny_tables() {
    let cluster = small_cluster();
    let qp = cluster.connect().unwrap();
    // One row.
    let one = TableGen::paper_default(64).build();
    let (ft, _) = qp.load_table(&one).unwrap();
    let out = qp.table_read(&ft).unwrap();
    assert_eq!(out.row_count(), 1);
    // Distinct over one row.
    let d = qp.distinct(&ft, vec![0]).unwrap();
    assert_eq!(d.row_count(), 1);
    // Selection selecting nothing still completes (lone FIN).
    let none = qp
        .select(&ft, &SelectQuery::all_columns().and_lt(0, 0u64))
        .unwrap();
    assert_eq!(none.row_count(), 0);
    assert_eq!(none.stats.packets, 1);
}

#[test]
fn response_time_monotone_in_table_size() {
    let cluster = small_cluster();
    let qp = cluster.connect().unwrap();
    let mut last = SimDuration::ZERO;
    for size in [64u64 << 10, 256 << 10, 1 << 20] {
        let table = TableGen::paper_default(size).build();
        let (ft, _) = qp.load_table(&table).unwrap();
        let t = qp.table_read(&ft).unwrap().stats.response_time;
        assert!(t > last, "bigger tables must take longer");
        last = t;
        qp.free_table(ft).unwrap();
    }
}
