//! Property-based IR verifier soundness (the static side of
//! `fv-analyze` pass 3): for arbitrary well-formed specs,
//! `QueryPlan::verify` must accept, the optimizer's output must verify
//! to the *same* schema, and the verified schema must agree with what
//! `CompiledPipeline::compile` actually builds. For seeded mutations
//! (out-of-bounds projection, regex over a non-bytes column,
//! out-of-bounds aggregate input) every layer must reject, and the
//! spec fingerprint — what the fleet uses to prove each shard ran the
//! same program — must move.

use proptest::prelude::*;

use farview_core::{AggFunc, AggSpec, Partitioning, PlanTarget, PredicateExpr, QueryPlan};
use fv_data::Schema;
use fv_pipeline::{CompiledPipeline, PipelineSpec};

const COLS: usize = 8;

/// Distinct in-bounds column lists.
fn arb_cols(max: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..COLS, 1..=max).prop_map(|mut cols| {
        let mut seen = std::collections::HashSet::new();
        cols.retain(|c| seen.insert(*c));
        cols
    })
}

/// A random well-formed spec over the 8×u64 paper-default schema.
fn arb_spec() -> impl Strategy<Value = PipelineSpec> {
    let filter = (0usize..COLS, 0u64..64)
        .prop_map(|(col, v)| PipelineSpec::passthrough().filter(PredicateExpr::lt(col, v)));
    let project = arb_cols(4).prop_map(|cols| PipelineSpec::passthrough().project(cols));
    let filter_project = (0usize..COLS, 0u64..64, arb_cols(4)).prop_map(|(col, v, cols)| {
        PipelineSpec::passthrough()
            .filter(PredicateExpr::lt(col, v))
            .project(cols)
    });
    let distinct = arb_cols(2).prop_map(|cols| PipelineSpec::passthrough().distinct(cols));
    let group_by = (
        0usize..COLS,
        0usize..COLS,
        prop::sample::select(vec![
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ]),
    )
        .prop_map(|(key, col, func)| {
            PipelineSpec::passthrough().group_by(vec![key], vec![AggSpec { col, func }])
        });
    prop_oneof![filter, project, filter_project, distinct, group_by]
}

/// Every deployment shape the planner knows about.
fn arb_target() -> impl Strategy<Value = PlanTarget> {
    prop_oneof![
        Just(PlanTarget::Single),
        (1usize..5).prop_map(|depth| PlanTarget::Batch { depth }),
        (2usize..5).prop_map(|shards| PlanTarget::Fleet {
            shards,
            partitioning: Partitioning::RowRange,
        }),
    ]
}

/// A seeded defect applied to a well-formed spec. Each returns a spec
/// that is wrong in a way `verify` is specified to catch, and whose
/// program bytes differ from the original's.
fn mutate(spec: &PipelineSpec, which: usize, k: usize) -> (&'static str, PipelineSpec) {
    match which {
        0 => ("oob-projection", spec.clone().project(vec![COLS + k])),
        1 => ("regex-on-u64", spec.clone().regex_match(k % COLS, "a+")),
        _ => (
            "oob-aggregate-input",
            spec.clone().group_by(
                vec![0],
                vec![AggSpec {
                    col: COLS + k,
                    func: AggFunc::Sum,
                }],
            ),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer can only move work around: its output must still
    /// verify, to the same output schema, for every target shape.
    #[test]
    fn optimizer_output_always_verifies(
        spec in arb_spec(),
        target in arb_target(),
    ) {
        let schema = Schema::uniform_u64(COLS);
        let plan = QueryPlan::from_spec(&spec, target);
        let verified = plan.verify(&schema);
        prop_assert!(verified.is_ok(), "verify rejected {spec:?}: {verified:?}");
        let verified = verified.unwrap();
        let opt = plan.optimize(&schema);
        prop_assert!(opt.is_ok(), "optimize failed on {spec:?}: {opt:?}");
        let re_verified = opt.unwrap().verify(&schema);
        prop_assert_eq!(
            re_verified.as_ref().ok(), Some(&verified),
            "optimizer changed the verified schema for {:?}", spec
        );
    }

    /// Static/dynamic agreement: the schema `verify` predicts is the
    /// schema the compiled operator chain actually produces.
    #[test]
    fn verify_agrees_with_compile(spec in arb_spec()) {
        let schema = Schema::uniform_u64(COLS);
        let plan = QueryPlan::from_spec(&spec, PlanTarget::Single);
        let verified = plan.verify(&schema).expect("well-formed spec verifies");
        let lowered = plan.to_spec().expect("well-formed spec lowers");
        let compiled = CompiledPipeline::compile(lowered, &schema)
            .expect("verified spec compiles");
        prop_assert_eq!(
            compiled.out_schema(), &verified,
            "compile disagreed with verify on {:?}", spec
        );
    }

    /// Seeded defects are rejected by the spec verifier, the plan
    /// verifier, and the compiler alike — and the mutation moves the
    /// fingerprint, so a fleet shard running the mutated program would
    /// be caught.
    #[test]
    fn seeded_mutations_are_rejected_and_move_the_fingerprint(
        spec in arb_spec(),
        which in 0usize..3,
        k in 0usize..4,
    ) {
        let schema = Schema::uniform_u64(COLS);
        let (name, bad) = mutate(&spec, which, k);
        prop_assert!(
            bad.verify(&schema).is_err(),
            "spec verify accepted {name}: {bad:?}"
        );
        let plan = QueryPlan::from_spec(&bad, PlanTarget::Single);
        prop_assert!(
            plan.verify(&schema).is_err(),
            "plan verify accepted {name}: {bad:?}"
        );
        if let Ok(lowered) = plan.to_spec() {
            prop_assert!(
                CompiledPipeline::compile(lowered, &schema).is_err(),
                "compile accepted {name}: {bad:?}"
            );
        }
        prop_assert!(
            bad.fingerprint() != spec.fingerprint(),
            "mutation {name} kept the fingerprint of {spec:?}"
        );
    }
}
