//! Property suite for the overload-safe serving layer
//! (`farview_core::serve`).
//!
//! The contract under test, past saturation:
//!
//! * **byte identity** — every admitted-and-completed query returns
//!   exactly the bytes an unloaded single-node oracle returns; shed,
//!   retry, and backoff drop whole queries, never parts of results;
//! * **no starvation** — across random heavy-tailed mixes (with
//!   over-demanders asking 4× their contracted share) every tenant
//!   completes work at every load;
//! * **typed errors only** — overload and backend failure surface as
//!   counted, typed outcomes, never a panic or a wrong answer;
//! * **seeded replay** — the same mix, config, and seed reproduce the
//!   same admissions, sheds, and payloads bit for bit;
//! * **chaos composition** — all of the above holds when the backend is
//!   a replicated fleet with one partitioned node (`r = 2` failover).

use farview_core::{
    FarviewCluster, FarviewConfig, FarviewFleet, FleetBackend, FvError, Partitioning, ServeBackend,
    ServeClass, ServeConfig, ServeEngine, ServeReport, ServeTenant, SingleNodeBackend,
};
use fv_bench::{fault_plan_for, overload_backend, serve_tenants, OVERLOAD_BENCH_SEED};
use fv_sim::SimDuration;
use fv_workload::{FaultSpec, TableGen, TenantMix, TenantMixGen};

/// The bench sweep's pressured serving tier: two pipeline servers
/// behind an eight-slot queue, token buckets opened wide so the queue
/// watermarks (not the buckets) are what overload drives against.
fn pressured(load: f64, seed: u64, horizon_ms: u64) -> ServeConfig {
    ServeConfig {
        servers: 2,
        queue_capacity: 8,
        bucket_qps_per_weight: 100_000.0,
        load,
        seed,
        horizon: SimDuration::from_millis(horizon_ms),
        ..ServeConfig::default()
    }
}

/// A heavy-tailed mix where every third tenant over-demands at 4× its
/// contracted share — the adversarial ingredient that exercises the
/// shed ladder and the DRR enforcement.
fn overdemanding_mix(n: usize, seed: u64) -> TenantMix {
    TenantMixGen::new(n)
        .queries_per_tenant(6)
        .overdemand(3, 4)
        .seed(seed)
        .build()
}

/// Run one pressured closed-loop serving episode over a fresh
/// single-node backend.
fn run_mix(
    mix: &TenantMix,
    rows: usize,
    load: f64,
    seed: u64,
    keep_payloads: bool,
) -> (Vec<ServeTenant>, ServeReport) {
    let tenants = serve_tenants(mix);
    let backend = overload_backend(mix, rows, seed);
    let config = ServeConfig {
        keep_payloads,
        ..pressured(load, seed ^ load.to_bits(), 6)
    };
    let report = ServeEngine::new(&tenants, config, backend)
        .expect("a runnable serving config")
        .run();
    (tenants, report)
}

/// Every query completed under shed/retry pressure is byte-identical
/// to a fresh unloaded run of the same backend — degradation drops
/// whole queries, never corrupts results.
#[test]
fn completions_match_the_unloaded_oracle_under_shed_pressure() {
    let mix = overdemanding_mix(12, OVERLOAD_BENCH_SEED);
    let (tenants, report) = run_mix(&mix, 1024, 16.0, OVERLOAD_BENCH_SEED, true);
    assert!(
        report.shed > 0,
        "the pressure config must actually trip the shed ladder"
    );
    assert!(
        report.rejected > 0,
        "the pressure config must actually trip admission control"
    );
    assert!(!report.completions.is_empty());
    let mut oracle = overload_backend(&mix, 1024, OVERLOAD_BENCH_SEED);
    for c in &report.completions {
        let spec = &tenants[c.tenant as usize].queries[c.query_idx];
        let want = oracle
            .execute(c.tenant, spec)
            .expect("oracle execution")
            .payload;
        assert_eq!(
            c.payload, want,
            "admitted query diverged from the oracle (tenant {}, query {})",
            c.tenant, c.query_idx
        );
    }
}

/// Same mix, same config, same seed: the same admissions, sheds, and
/// payloads, bit for bit. Any fairness violation is replayable.
#[test]
fn pressured_runs_replay_byte_identically() {
    let mix = overdemanding_mix(12, 77);
    let (_, a) = run_mix(&mix, 256, 16.0, 77, true);
    let (_, b) = run_mix(&mix, 256, 16.0, 77, true);
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.deadline_missed, b.deadline_missed);
    assert_eq!(a.abandoned, b.abandoned);
    assert_eq!(a.completions.len(), b.completions.len());
    for (x, y) in a.completions.iter().zip(&b.completions) {
        assert_eq!(x.tenant, y.tenant);
        assert_eq!(x.query_idx, y.query_idx);
        assert_eq!(x.payload, y.payload, "replay diverged in result bytes");
    }
}

/// Across random heavy-tailed mixes and loads spanning saturation: no
/// tenant starves, fairness holds its DRR floor, gold is never shed,
/// and every offered query resolves to at most one final outcome.
#[test]
fn no_tenant_starves_across_random_heavy_tailed_mixes() {
    for seed in [3u64, 17, 91, 205] {
        for load in [4.0f64, 16.0] {
            let n = 10 + (seed as usize % 4);
            let mix = overdemanding_mix(n, seed);
            let (_, r) = run_mix(&mix, 256, load, seed, false);
            assert!(
                r.min_completed > 0,
                "tenant starved (n {n}, seed {seed}, load {load}): {r:?}"
            );
            assert!(
                r.fairness_index >= 0.5,
                "fairness {} broke the DRR bound (n {n}, seed {seed}, load {load})",
                r.fairness_index
            );
            assert!(
                r.completed + r.deadline_missed + r.abandoned + r.exec_failed <= r.offered,
                "final outcomes exceed offered work (seed {seed}, load {load})"
            );
            for t in &r.tenants {
                if t.class == ServeClass::Gold {
                    assert_eq!(
                        t.shed, 0,
                        "gold tenant {} was shed (seed {seed}, load {load})",
                        t.tenant
                    );
                }
            }
        }
    }
}

/// Build a fleet-backed serving tier: `nodes` nodes, each tenant's
/// table sharded across them at `replicas` copies, tables returned for
/// the single-node oracle.
fn fleet_backend_for(
    mix: &TenantMix,
    fleet: &FarviewFleet,
    rows: usize,
    replicas: usize,
) -> (FleetBackend, Vec<fv_data::Table>) {
    let qp = fleet.connect().expect("fleet connect");
    let mut backend = FleetBackend::new(qp);
    let mut tables = Vec::new();
    for t in &mix.tenants {
        let table = TableGen::new(8, rows)
            .seed(0xC0FF_EE ^ (t.id as u64).wrapping_mul(0x9E37_79B9))
            .distinct_column(0, 32)
            .selectivity_column(1, 0.5)
            .sequential_column(2)
            .build();
        let (ft, _) = backend
            .load_table_replicated(&table, Partitioning::RowRange, replicas)
            .expect("fleet load");
        backend.bind_tenant(t.id as u32, ft, table.byte_len() as u64);
        tables.push(table);
    }
    (backend, tables)
}

/// Chaos composition: the overload mix served by a replicated fleet
/// with one fully partitioned node. `r = 2` failover keeps every
/// serving invariant — zero typed execution failures surface, no
/// tenant starves, fairness holds, and every completion is still
/// byte-identical to a healthy single-node oracle.
#[test]
fn overload_mix_survives_a_partitioned_replica() {
    let mix = overdemanding_mix(8, 7);
    let tenants = serve_tenants(&mix);
    let fleet = FarviewFleet::new(3, FarviewConfig::default());
    let (backend, tables) = fleet_backend_for(&mix, &fleet, 192, 2);
    let victim = fleet.node_ids()[0];
    fleet
        .degrade_node(victim, fault_plan_for(&FaultSpec::Partition, 11))
        .expect("degrade");
    let config = ServeConfig {
        keep_payloads: true,
        ..pressured(8.0, 21, 6)
    };
    let report = ServeEngine::new(&tenants, config, backend)
        .expect("a runnable serving config")
        .run();
    assert_eq!(
        report.exec_failed, 0,
        "r = 2 failover must be transparent to the serving layer"
    );
    assert!(
        report.min_completed > 0,
        "tenant starved behind a partition"
    );
    assert!(
        report.fairness_index >= 0.5,
        "fairness {} broke the DRR bound on a degraded fleet",
        report.fairness_index
    );
    assert!(!report.completions.is_empty());
    let cluster = FarviewCluster::new(FarviewConfig::default());
    let qp = cluster.connect().expect("connect");
    let mut oracle = SingleNodeBackend::new(qp);
    for (t, table) in mix.tenants.iter().zip(&tables) {
        let (ft, _) = oracle.load_table(table).expect("oracle load");
        oracle.bind_tenant(t.id as u32, ft, table.byte_len() as u64);
    }
    for c in &report.completions {
        let spec = &tenants[c.tenant as usize].queries[c.query_idx];
        let want = oracle
            .execute(c.tenant, spec)
            .expect("oracle execution")
            .payload;
        assert_eq!(
            c.payload, want,
            "degraded-fleet completion diverged from the oracle (tenant {})",
            c.tenant
        );
    }
}

/// Without replication a partition is not survivable — and the failure
/// mode must be a clean typed error at the backend surface plus counted
/// `exec_failed` outcomes at the serving layer, never a panic.
#[test]
fn unreplicated_partition_fails_typed_never_panics() {
    let mix = overdemanding_mix(6, 13);
    let tenants = serve_tenants(&mix);
    let fleet = FarviewFleet::new(2, FarviewConfig::default());
    let (mut backend, _tables) = fleet_backend_for(&mix, &fleet, 128, 1);
    let victim = fleet.node_ids()[0];
    fleet
        .degrade_node(victim, fault_plan_for(&FaultSpec::Partition, 5))
        .expect("degrade");
    let err = backend
        .execute(tenants[0].id, &tenants[0].queries[0])
        .expect_err("a partitioned unreplicated scan cannot succeed");
    assert!(
        matches!(
            err,
            FvError::Net(_) | FvError::IncompleteEpisode { .. } | FvError::NodeDown { .. }
        ),
        "untyped failure shape: {err}"
    );
    let report = ServeEngine::new(&tenants, pressured(4.0, 9, 3), backend)
        .expect("a runnable serving config")
        .run();
    assert!(
        report.exec_failed > 0,
        "execution failures must be counted, not swallowed"
    );
    assert_eq!(report.completed, 0, "nothing can complete unreplicated");
    assert!(
        report.completed + report.deadline_missed + report.abandoned + report.exec_failed
            <= report.offered,
        "final outcomes exceed offered work"
    );
}
