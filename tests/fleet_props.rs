//! Property-based shard-merge correctness: a fleet of N nodes and a
//! single node are two routes to the same query semantics. Under
//! row-range partitioning the merged fleet result must be
//! **byte-identical** to the single node's for selection, `DISTINCT`
//! and `GROUP BY` over the same rows; under hash partitioning the
//! results must be set-equal with every group computed whole on one
//! shard.

use proptest::prelude::*;

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec, PredicateExpr};
use fv_data::{Column, ColumnType, Schema, Table, TableBuilder, Value};
use fv_pipeline::JoinSmallSpec;

/// A random small table: `cols` u64 columns, bounded values so groups
/// and predicates are non-degenerate, and sums stay exactly
/// representable in `f64` (the AVG merge divides a sum of shard sums).
fn arb_table(max_rows: usize, cols: usize, value_bound: u64) -> impl Strategy<Value = Table> {
    prop::collection::vec(prop::collection::vec(0..value_bound, cols), 1..=max_rows).prop_map(
        move |rows| {
            let schema = Schema::uniform_u64(cols);
            let mut b = TableBuilder::with_capacity(schema, rows.len());
            for r in rows {
                b.push_values(r.into_iter().map(Value::U64).collect());
            }
            b.build()
        },
    )
}

fn single_node(table: &Table, spec: &PipelineSpec) -> QueryOutcome {
    let c = FarviewCluster::new(FarviewConfig::tiny());
    let qp = c.connect().unwrap();
    let (ft, _) = qp.load_table(table).unwrap();
    qp.far_view(&ft, spec).unwrap()
}

fn fleet(nodes: usize, table: &Table, part: Partitioning, spec: &PipelineSpec) -> QueryOutcome {
    let f = FarviewFleet::new(nodes, FarviewConfig::tiny());
    let qp = f.connect().unwrap();
    let (ft, _) = qp.load_table(table, part).unwrap();
    qp.far_view(&ft, spec).unwrap().merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Selection (and the plain read) concatenate back into single-node
    /// row order under row-range partitioning, for any fleet size.
    #[test]
    fn select_is_byte_identical(
        table in arb_table(200, 3, 1000),
        threshold in 0u64..1000,
        nodes in 2usize..6,
    ) {
        let spec = PipelineSpec::passthrough().filter(PredicateExpr::lt(0, threshold));
        let single = single_node(&table, &spec);
        let merged = fleet(nodes, &table, Partitioning::RowRange, &spec);
        prop_assert_eq!(merged.payload, single.payload);

        let read = PipelineSpec::passthrough();
        prop_assert_eq!(
            fleet(nodes, &table, Partitioning::RowRange, &read).payload,
            table.bytes().to_vec()
        );
    }

    /// DISTINCT: the order-preserving union over contiguous shards
    /// reproduces the single node's first-seen flush order exactly.
    #[test]
    fn distinct_is_byte_identical(
        table in arb_table(300, 2, 48),
        nodes in 2usize..6,
    ) {
        let spec = PipelineSpec::passthrough().distinct(vec![0]);
        let single = single_node(&table, &spec);
        let merged = fleet(nodes, &table, Partitioning::RowRange, &spec);
        prop_assert_eq!(merged.payload, single.payload);
    }

    /// GROUP BY with every aggregate function: partial re-aggregation
    /// across shards reproduces the single node byte-for-byte, including
    /// the AVG → SUMF64+COUNT rewrite.
    #[test]
    fn group_by_is_byte_identical(
        table in arb_table(250, 3, 64),
        func in prop::sample::select(vec![
            AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg,
        ]),
        nodes in 2usize..6,
    ) {
        let spec = PipelineSpec::passthrough()
            .group_by(vec![0], vec![AggSpec { col: 2, func }]);
        let single = single_node(&table, &spec);
        let merged = fleet(nodes, &table, Partitioning::RowRange, &spec);
        prop_assert_eq!(merged.payload, single.payload, "func {:?}", func);
        prop_assert_eq!(merged.schema, single.schema);
    }

    /// Hash partitioning trades row order for key co-location: results
    /// are set-equal to the single node's, and the shards together flush
    /// exactly one group per distinct key.
    #[test]
    fn key_hash_group_by_is_set_equal(
        table in arb_table(300, 2, 32),
        nodes in 2usize..5,
    ) {
        let spec = PipelineSpec::passthrough()
            .group_by(vec![0], vec![AggSpec { col: 1, func: AggFunc::Sum }]);
        let single = single_node(&table, &spec);

        let f = FarviewFleet::new(nodes, FarviewConfig::tiny());
        let qp = f.connect().unwrap();
        let (ft, _) = qp.load_table(&table, Partitioning::KeyHash(0)).unwrap();
        let out = qp.far_view(&ft, &spec).unwrap();

        let sorted_rows = |o: &QueryOutcome| {
            let mut v: Vec<Vec<u8>> = o
                .payload
                .chunks_exact(o.schema.row_bytes())
                .map(<[u8]>::to_vec)
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(sorted_rows(&out.merged), sorted_rows(&single));
        prop_assert_eq!(out.merged.stats.groups_flushed, single.stats.groups_flushed);
    }
}

/// The batched hash operators and the DFA-prefiltered regex scan ride
/// through a **replicated** fleet read unchanged: with `r = 2` under
/// row-range partitioning, DISTINCT, GROUP BY, the broadcast join and a
/// regex selection over a run-heavy (clustered) fact table must each be
/// byte-identical to the single node. Clustered keys matter here — they
/// are what drives the block path's run memoization on every shard.
#[test]
fn replicated_fleet_matches_single_node_for_stateful_ops() {
    // A fact table physically clustered on the col-0 foreign key: runs
    // of 8 equal keys, 13 distinct dimension keys.
    let mut b = TableBuilder::with_capacity(Schema::uniform_u64(3), 600);
    for i in 0..600u64 {
        b.push_values(vec![
            Value::U64((i / 8) % 13),
            Value::U64(i),
            Value::U64(i % 5),
        ]);
    }
    let fact = b.build();
    let mut bb = TableBuilder::new(Schema::uniform_u64(2));
    for k in 0..13u64 {
        bb.push_values(vec![Value::U64(k), Value::U64(7000 + k)]);
    }
    let dim = bb.build();

    let specs = [
        PipelineSpec::passthrough().distinct(vec![0]),
        PipelineSpec::passthrough().group_by(
            vec![0],
            vec![AggSpec {
                col: 1,
                func: AggFunc::Sum,
            }],
        ),
        PipelineSpec::passthrough().join_small(JoinSmallSpec::new(0, &dim, 0)),
    ];

    let f = FarviewFleet::new(3, FarviewConfig::tiny());
    let qp = f.connect().unwrap();
    let (ft, _) = qp
        .load_table_replicated(&fact, Partitioning::RowRange, 2)
        .unwrap();
    assert_eq!(ft.replicas(), 2);
    for spec in &specs {
        let single = single_node(&fact, spec);
        let merged = qp.far_view(&ft, spec).unwrap().merged;
        assert_eq!(
            merged.payload, single.payload,
            "r=2 fleet must match single node for {spec:?}"
        );
        assert_eq!(merged.schema, single.schema);
    }

    // Regex needs a string column; same r=2 replication discipline.
    let schema = Schema::new(vec![
        Column {
            name: "k".into(),
            ty: ColumnType::U64,
        },
        Column {
            name: "s".into(),
            ty: ColumnType::Bytes(8),
        },
    ]);
    let mut sb = TableBuilder::with_capacity(schema, 300);
    let alphabet = b"abcx";
    for i in 0..300u64 {
        let s: Vec<u8> = (0..6).map(|j| alphabet[((i >> j) & 3) as usize]).collect();
        sb.push_values(vec![Value::U64(i), Value::Bytes(s)]);
    }
    let strings = sb.build();
    let spec = PipelineSpec::passthrough().regex_match(1, "a+b");
    let single = single_node(&strings, &spec);
    let (sft, _) = qp
        .load_table_replicated(&strings, Partitioning::RowRange, 2)
        .unwrap();
    let merged = qp.far_view(&sft, &spec).unwrap().merged;
    assert_eq!(
        merged.payload, single.payload,
        "r=2 fleet regex selection must match single node"
    );
}
