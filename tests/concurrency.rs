//! Multi-client concurrency: shared tables, heterogeneous pipelines
//! running side by side, fairness under asymmetric load, and thread
//! safety of the cluster facade.

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec, PipelineSpec, PredicateExpr};
use fv_workload::TableGen;

#[test]
fn six_clients_share_one_physical_table() {
    // "Farview also supports concurrent access, with multiple clients all
    // accessing the same shared disaggregated memory" (§1).
    let cluster = FarviewCluster::new(FarviewConfig::default());
    let owner = cluster.connect().unwrap();
    let table = TableGen::paper_default(512 << 10)
        .seed(77)
        .distinct_column(0, 16)
        .build();
    let (ft_owner, _) = owner.load_table(&table).unwrap();
    let pages_after_load = cluster.free_pages();

    let others: Vec<_> = (0..5).map(|_| cluster.connect().unwrap()).collect();
    let shared: Vec<_> = others
        .iter()
        .map(|qp| owner.share_table(&ft_owner, qp).unwrap())
        .collect();
    assert_eq!(
        cluster.free_pages(),
        pages_after_load,
        "sharing must not consume new pages"
    );

    // All six query the same physical pages concurrently.
    let spec = PipelineSpec::passthrough().distinct(vec![0]);
    let mut requests = vec![(&owner, &ft_owner, spec.clone())];
    for (qp, ft) in others.iter().zip(&shared) {
        requests.push((qp, ft, spec.clone()));
    }
    let outs = cluster.run_concurrent(requests).unwrap();
    assert_eq!(outs.len(), 6);
    for o in &outs {
        assert_eq!(o.row_count(), 16, "every client sees the same data");
    }
}

#[test]
fn heterogeneous_pipelines_run_concurrently() {
    // Different operator pipelines in different dynamic regions at the
    // same time — the whole point of partial reconfiguration (§3.2).
    let cluster = FarviewCluster::new(FarviewConfig::default());
    let qps: Vec<_> = (0..4).map(|_| cluster.connect().unwrap()).collect();
    let table = TableGen::paper_default(256 << 10)
        .seed(5)
        .distinct_column(0, 32)
        .selectivity_column(1, 0.5)
        .build();
    let fts: Vec<_> = qps
        .iter()
        .map(|qp| qp.load_table(&table).unwrap().0)
        .collect();

    let specs = [
        PipelineSpec::passthrough(),
        PipelineSpec::passthrough().filter(PredicateExpr::lt(1, fv_workload::SELECTIVITY_PIVOT)),
        PipelineSpec::passthrough().distinct(vec![0]),
        PipelineSpec::passthrough().group_by(
            vec![0],
            vec![AggSpec {
                col: 2,
                func: AggFunc::Count,
            }],
        ),
    ];
    let requests = qps
        .iter()
        .zip(&fts)
        .zip(specs.iter())
        .map(|((qp, ft), spec)| (qp, ft, spec.clone()))
        .collect();
    let outs = cluster.run_concurrent(requests).unwrap();

    // Each pipeline's own semantics hold under interleaving.
    assert_eq!(outs[0].payload, table.bytes());
    let expected_sel = table
        .rows()
        .filter(|r| r.value(1).as_u64() < fv_workload::SELECTIVITY_PIVOT)
        .count();
    assert_eq!(outs[1].row_count(), expected_sel);
    assert_eq!(outs[2].row_count(), 32);
    assert_eq!(outs[3].row_count(), 32);
    let total: u64 = outs[3].iter_rows().map(|r| r.value(1).as_u64()).sum();
    assert_eq!(
        total,
        table.row_count() as u64,
        "counts partition the table"
    );
}

#[test]
fn asymmetric_load_does_not_starve_the_small_query() {
    // One client reads 2 MB, the other 64 kB. DRR must let the small one
    // finish close to its solo time, not behind the elephant.
    let cluster = FarviewCluster::new(FarviewConfig::default());
    let big_qp = cluster.connect().unwrap();
    let small_qp = cluster.connect().unwrap();
    let big = TableGen::paper_default(2 << 20).seed(1).build();
    let small = TableGen::paper_default(64 << 10).seed(2).build();
    let (ft_big, _) = big_qp.load_table(&big).unwrap();
    let (ft_small, _) = small_qp.load_table(&small).unwrap();

    let solo = small_qp.table_read(&ft_small).unwrap().stats.response_time;
    let outs = cluster
        .run_concurrent(vec![
            (&big_qp, &ft_big, PipelineSpec::passthrough()),
            (&small_qp, &ft_small, PipelineSpec::passthrough()),
        ])
        .unwrap();
    let small_shared = outs[1].stats.response_time;
    let big_shared = outs[0].stats.response_time;
    assert!(
        small_shared.as_nanos() < 4 * solo.as_nanos(),
        "small query starved: {small_shared} vs solo {solo}"
    );
    assert!(
        small_shared < big_shared,
        "64 kB must finish before 2 MB: {small_shared} vs {big_shared}"
    );
}

#[test]
fn cluster_is_usable_from_threads() {
    // The facade is Send + Sync (Arc<Mutex>); clients on real host
    // threads must be able to connect, load, and query independently.
    let cluster = FarviewCluster::new(FarviewConfig::default());
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let cluster = cluster.clone();
            handles.push(scope.spawn(move |_| {
                let qp = cluster.connect().expect("region");
                let table = TableGen::paper_default(64 << 10).seed(i).build();
                let (ft, _) = qp.load_table(&table).expect("space");
                let out = qp.table_read(&ft).expect("read");
                assert_eq!(out.payload, table.bytes());
                out.stats.response_time
            }));
        }
        for h in handles {
            assert!(h.join().unwrap() > fv_sim::SimDuration::ZERO);
        }
    })
    .unwrap();
}

#[test]
fn deterministic_concurrent_episodes() {
    // The DES is deterministic: the same six-client episode twice gives
    // identical times and payloads.
    let run = || {
        let cluster = FarviewCluster::new(FarviewConfig::default());
        let qps: Vec<_> = (0..6).map(|_| cluster.connect().unwrap()).collect();
        let tables: Vec<_> = (0..6)
            .map(|i| TableGen::paper_default(128 << 10).seed(i).build())
            .collect();
        let fts: Vec<_> = qps
            .iter()
            .zip(&tables)
            .map(|(qp, t)| qp.load_table(t).unwrap().0)
            .collect();
        let reqs = qps
            .iter()
            .zip(&fts)
            .map(|(qp, ft)| (qp, ft, PipelineSpec::passthrough()))
            .collect();
        cluster
            .run_concurrent(reqs)
            .unwrap()
            .into_iter()
            .map(|o| (o.stats.response_time, o.payload.len()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
