//! Property-based optimizer soundness: for arbitrary specs, the
//! optimized plan must return **byte-identical** results to the
//! unoptimized spec on every entry point — single `farView`, the
//! doorbell batch, the fleet under row-range *and* key-hash
//! partitioning, and the tiered pool. The optimizer may only move work
//! around (reorder predicates, prune projections, switch the memory
//! access path); it must never change a payload byte or a result
//! schema.

use proptest::prelude::*;

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec, BlockStore, PredicateExpr, TierLevel, TieredPool};
use fv_data::TableBuilder;

/// A random table: 8 u64 columns (the paper-default row shape), bounded
/// values.
fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec(prop::collection::vec(0..64u64, 8), 1..=max_rows).prop_map(|rows| {
        let schema = Schema::uniform_u64(8);
        let mut b = TableBuilder::with_capacity(schema, rows.len());
        for r in rows {
            b.push_values(r.into_iter().map(Value::U64).collect());
        }
        b.build()
    })
}

/// Distinct column lists (duplicate names never survive
/// `Schema::project`, so column sets are always unique in practice).
fn arb_cols(max: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..8, 1..=max).prop_map(|mut cols| {
        let mut seen = std::collections::HashSet::new();
        cols.retain(|c| seen.insert(*c));
        cols
    })
}

/// A random fleet-mergeable spec: projection/selection/distinct/group-by
/// shapes (compression and output encryption cannot fan out).
fn arb_spec() -> impl Strategy<Value = PipelineSpec> {
    let filter = (0usize..8, 0u64..64)
        .prop_map(|(col, v)| PipelineSpec::passthrough().filter(PredicateExpr::lt(col, v)));
    let project = arb_cols(4).prop_map(|cols| PipelineSpec::passthrough().project(cols));
    let filter_project = (0usize..8, 0u64..64, arb_cols(4)).prop_map(|(col, v, cols)| {
        PipelineSpec::passthrough()
            .filter(PredicateExpr::lt(col, v))
            .project(cols)
    });
    let distinct = arb_cols(2).prop_map(|cols| PipelineSpec::passthrough().distinct(cols));
    let group_by = (
        0usize..8,
        0usize..8,
        prop::sample::select(vec![
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ]),
    )
        .prop_map(|(key, col, func)| {
            PipelineSpec::passthrough().group_by(vec![key], vec![AggSpec { col, func }])
        });
    prop_oneof![filter, project, filter_project, distinct, group_by]
}

/// Optimize `spec` against `schema` for `target` and lower it back.
fn optimized(spec: &PipelineSpec, schema: &Schema, target: PlanTarget) -> PipelineSpec {
    QueryPlan::from_spec(spec, target)
        .optimize(schema)
        .expect("optimize")
        .to_spec()
        .expect("lower")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single `farView` and the doorbell batch.
    #[test]
    fn optimized_plans_match_on_single_and_batch(
        table in arb_table(150),
        spec in arb_spec(),
        depth in 1usize..5,
    ) {
        let opt = optimized(&spec, table.schema(), PlanTarget::Batch { depth });
        let c = FarviewCluster::new(FarviewConfig::tiny());
        let qp = c.connect().unwrap();
        let (ft, _) = qp.load_table(&table).unwrap();

        let naive = qp.far_view(&ft, &spec).unwrap();
        let optimized_out = qp.far_view(&ft, &opt).unwrap();
        prop_assert_eq!(&optimized_out.payload, &naive.payload);
        prop_assert_eq!(&optimized_out.schema, &naive.schema);

        let naive_batch = qp.far_view_batch(&ft, &vec![spec.clone(); depth]).unwrap();
        let opt_batch = qp.far_view_batch(&ft, &vec![opt.clone(); depth]).unwrap();
        for (a, b) in naive_batch.iter().zip(&opt_batch) {
            prop_assert_eq!(&b.payload, &a.payload);
        }
    }

    /// Fleet scatter–gather under both partitionings.
    #[test]
    fn optimized_plans_match_on_the_fleet(
        table in arb_table(200),
        spec in arb_spec(),
        nodes in 2usize..5,
    ) {
        for part in [Partitioning::RowRange, Partitioning::KeyHash(0)] {
            let opt = optimized(
                &spec,
                table.schema(),
                PlanTarget::Fleet { shards: nodes, partitioning: part },
            );
            let fleet = FarviewFleet::new(nodes, FarviewConfig::tiny());
            let qp = fleet.connect().unwrap();
            let (ft, _) = qp.load_table(&table, part).unwrap();
            let naive = qp.far_view(&ft, &spec).unwrap();
            let optimized_out = qp.far_view(&ft, &opt).unwrap();
            prop_assert_eq!(&optimized_out.merged.payload, &naive.merged.payload,
                "{:?} diverged under {:?}", spec, part);
            prop_assert_eq!(&optimized_out.merged.schema, &naive.merged.schema);
        }
    }

    /// The tiered pool (cold stage-in, then a hot hit).
    #[test]
    fn optimized_plans_match_on_the_tiered_pool(
        table in arb_table(100),
        spec in arb_spec(),
    ) {
        let opt = optimized(&spec, table.schema(), PlanTarget::Tiered { residency: TierLevel::Disk });
        let c = FarviewCluster::new(FarviewConfig::tiny());
        let qp = c.connect().unwrap();
        let mut pool = TieredPool::new(&qp, 8 << 20, BlockStore::default());
        pool.insert("t", &table).unwrap();
        let cold_naive = pool.query("t", &spec).unwrap();
        let hot_opt = pool.query("t", &opt).unwrap();
        prop_assert_eq!(&hot_opt.outcome.payload, &cold_naive.outcome.payload);
        prop_assert_eq!(&hot_opt.outcome.schema, &cold_naive.outcome.schema);
    }

    /// DISTINCT merges through the unified partial-aggregation path; it
    /// must still equal the single node byte for byte under row-range
    /// partitioning (the pre-unification guarantee).
    #[test]
    fn unified_distinct_merge_is_byte_identical(
        table in arb_table(250),
        nodes in 2usize..6,
        cols in arb_cols(2),
    ) {
        let spec = PipelineSpec::passthrough().distinct(cols);
        let c = FarviewCluster::new(FarviewConfig::tiny());
        let qp_single = c.connect().unwrap();
        let (ft_single, _) = qp_single.load_table(&table).unwrap();
        let single = qp_single.far_view(&ft_single, &spec).unwrap();

        let fleet = FarviewFleet::new(nodes, FarviewConfig::tiny());
        let qp = fleet.connect().unwrap();
        let (ft, _) = qp.load_table(&table, Partitioning::RowRange).unwrap();
        let merged = qp.far_view(&ft, &spec).unwrap();
        prop_assert_eq!(&merged.merged.payload, &single.payload);
        prop_assert_eq!(&merged.merged.schema, &single.schema);
    }
}
