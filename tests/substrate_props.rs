//! Property tests on the substrate invariants: regex engine vs oracle,
//! AES-CTR algebra, reassembly under arbitrary permutations, MMU
//! allocation invariants, cuckoo no-loss, DRR byte fairness.

use proptest::prelude::*;

use fv_net::Reassembly;
use fv_pipeline::cuckoo::CuckooTable;
use fv_regex::{naive, parser, Regex};
use fv_sim::DrrScheduler;

// ---------------------------------------------------------------------------
// Regex: DFA pipeline vs the backtracking oracle
// ---------------------------------------------------------------------------

/// Random patterns from a small grammar the oracle handles comfortably.
fn arb_pattern() -> impl Strategy<Value = String> {
    let atom = prop::sample::select(vec!["a", "b", "c", ".", "[ab]", "[^a]", "(a|b)", "(bc)"]);
    let repeat = prop::sample::select(vec!["", "*", "+", "?", "{1,2}"]);
    prop::collection::vec((atom, repeat), 1..5).prop_map(|parts| {
        parts
            .into_iter()
            .map(|(a, r)| format!("{a}{r}"))
            .collect::<String>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dfa_matches_backtracking_oracle(
        pattern in arb_pattern(),
        input in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', b'd']), 0..12),
    ) {
        let re = Regex::compile(&pattern).expect("grammar only emits valid patterns");
        let ast = parser::parse(&pattern).expect("valid").ast;
        prop_assert_eq!(
            re.is_match(&input),
            naive::search(&ast, &input),
            "pattern {:?} input {:?}", pattern, input
        );
    }

    #[test]
    fn anchored_dfa_matches_oracle_exact(
        pattern in arb_pattern(),
        input in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..10),
    ) {
        let anchored = format!("^{pattern}$");
        let re = Regex::compile(&anchored).expect("valid");
        let ast = parser::parse(&anchored).expect("valid").ast;
        prop_assert_eq!(re.is_match(&input), naive::match_exact(&ast, &input));
    }
}

// ---------------------------------------------------------------------------
// AES-CTR algebra
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// apply ∘ apply = identity, for any key/iv/offset/data.
    #[test]
    fn ctr_is_involutive(
        key in prop::array::uniform16(any::<u8>()),
        iv in prop::array::uniform16(any::<u8>()),
        offset in 0u64..1000,
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut buf = data.clone();
        fv_crypto::ctr_apply_at(&key, &iv, offset, &mut buf);
        fv_crypto::ctr_apply_at(&key, &iv, offset, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Chunked application equals one-shot application (streaming
    /// decryption across bursts relies on this).
    #[test]
    fn ctr_chunking_is_associative(
        key in prop::array::uniform16(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 1..200),
        split in 0usize..200,
    ) {
        let split = split % data.len();
        let mut oneshot = data.clone();
        fv_crypto::ctr_apply_at(&key, &key, 0, &mut oneshot);
        let mut chunked = data.clone();
        fv_crypto::ctr_apply_at(&key, &key, 0, &mut chunked[..split]);
        fv_crypto::ctr_apply_at(&key, &key, split as u64, &mut chunked[split..]);
        prop_assert_eq!(chunked, oneshot);
    }
}

// ---------------------------------------------------------------------------
// Reassembly under arbitrary delivery orders
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reassembly_handles_any_permutation(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..20), 1..12),
        seed in any::<u64>(),
    ) {
        // Build the expected stream and a shuffled delivery order.
        let expected: Vec<u8> = chunks.concat();
        let n = chunks.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Deterministic Fisher-Yates from the seed.
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }

        let mut rx = Reassembly::new();
        let mut completed = false;
        for &i in &order {
            let last = i == n - 1;
            let done = rx
                .accept(0, i as u32, bytes::Bytes::from(chunks[i].clone()), last)
                .expect("no duplicates in a permutation");
            completed = done;
        }
        prop_assert!(completed, "all packets delivered -> complete");
        prop_assert_eq!(rx.into_payload(), expected);
    }
}

// ---------------------------------------------------------------------------
// MMU invariants under operation sequences
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever interleaving of alloc/write/free across two domains:
    /// reads return what the owning domain last wrote, and the free-page
    /// count is restored after teardown.
    #[test]
    fn mmu_isolation_and_accounting(
        ops in prop::collection::vec((0usize..2, 1u64..100_000, any::<u8>()), 1..12),
    ) {
        use fv_mem::MemoryStack;
        let mut m = MemoryStack::new(2, 32 * 1024 * 1024);
        let baseline = m.free_page_count();
        let d = [m.create_domain(), m.create_domain()];
        let mut live: Vec<(usize, u64, Vec<u8>)> = Vec::new();

        for (dom, bytes, fill) in ops {
            if let Ok(va) = m.alloc(d[dom], bytes) {
                let data = vec![fill; bytes as usize];
                m.write(d[dom], va, &data).unwrap();
                live.push((dom, va, data));
            }
        }
        // Every live allocation reads back its own bytes. The same
        // numeric address in the *other* domain either faults (no
        // mapping there) or resolves to that domain's own, different
        // allocation — never to this one's physical pages.
        for (dom, va, data) in &live {
            prop_assert_eq!(&m.read(d[*dom], *va, data.len() as u64).unwrap(), data);
            let other = 1 - *dom;
            let other_covers = live.iter().any(|(od, ova, odata)| {
                *od == other && *va >= *ova && *va < *ova + odata.len() as u64
            });
            match m.read(d[other], *va, 1) {
                Err(_) => prop_assert!(!other_covers, "mapped address must not fault"),
                Ok(byte) => {
                    prop_assert!(other_covers, "unmapped address must fault");
                    // It read the other domain's own fill byte.
                    let expected = live
                        .iter()
                        .find(|(od, ova, odata)| {
                            *od == other && *va >= *ova && *va < *ova + odata.len() as u64
                        })
                        .map(|(_, _, odata)| odata[0])
                        .expect("covered");
                    prop_assert_eq!(byte[0], expected);
                }
            }
        }
        m.destroy_domain(d[0]).unwrap();
        m.destroy_domain(d[1]).unwrap();
        prop_assert_eq!(m.free_page_count(), baseline);
    }
}

// ---------------------------------------------------------------------------
// Cuckoo: nothing vanishes
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// resident ∪ homeless == inserted, regardless of geometry and load.
    #[test]
    fn cuckoo_conserves_entries(
        keys in prop::collection::hash_set(any::<u64>(), 1..200),
        ways in 2usize..5,
        buckets_pow in 3u32..8,
    ) {
        let mut t: CuckooTable<u64> = CuckooTable::new(ways, 1 << buckets_pow);
        let mut homeless = Vec::new();
        for &k in &keys {
            if let Err((hk, hv)) = t.insert(k.to_le_bytes().into(), k) {
                prop_assert_eq!(u64::from_le_bytes(hk.as_ref().try_into().unwrap()), hv);
                homeless.push(hv);
            }
        }
        let resident: std::collections::HashSet<u64> = t.iter().map(|(_, v)| *v).collect();
        prop_assert_eq!(resident.len() + homeless.len(), keys.len());
        for h in &homeless {
            prop_assert!(keys.contains(h));
            prop_assert!(!resident.contains(h), "homeless entry still resident");
        }
    }
}

// ---------------------------------------------------------------------------
// DRR: byte-fairness between two backlogged flows
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn drr_is_byte_fair_for_backlogged_flows(
        size_a in 64u64..1024,
        size_b in 64u64..1024,
    ) {
        let mut drr: DrrScheduler<u64> = DrrScheduler::new(2, 1024);
        for _ in 0..600 {
            drr.push(0, size_a, size_a);
            drr.push(1, size_b, size_b);
        }
        let mut served = [0u64; 2];
        // Serve half the total load while both stay backlogged.
        for _ in 0..600 {
            let (flow, bytes) = drr.pop().unwrap();
            served[flow] += bytes;
        }
        let ratio = served[0] as f64 / served[1] as f64;
        prop_assert!(
            (0.75..1.34).contains(&ratio),
            "byte share skewed: {} ({} vs {})", ratio, served[0], served[1]
        );
    }
}
