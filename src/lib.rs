//! # farview — Disaggregated Memory with Operator Off-loading (reproduction)
//!
//! Facade crate for the Rust reproduction of *"Farview: Disaggregated
//! Memory with Operator Off-loading for Database Engines"* (CIDR 2022).
//! It re-exports the public API of every subsystem crate so downstream
//! users can depend on a single crate:
//!
//! ```
//! use farview::prelude::*;
//!
//! // Build a Farview node with two DRAM channels and six dynamic regions,
//! // load a table into the disaggregated buffer pool, and offload a
//! // selection.
//! let mut cluster = FarviewCluster::new(FarviewConfig::default());
//! let mut qp = cluster.connect().expect("dynamic region available");
//! let table = fv_workload::TableGen::new(8, 1 << 14)
//!     .seed(42)
//!     .selectivity_column(0, 0.5)
//!     .build();
//! let ft = qp.alloc_table(&table).expect("buffer pool space");
//! qp.table_write(&ft, table.bytes()).expect("write");
//! let outcome = qp
//!     .select(&ft, &SelectQuery::all_columns().and_lt(0, fv_workload::SELECTIVITY_PIVOT))
//!     .expect("offloaded selection");
//! assert!(outcome.stats.response_time > fv_sim::SimDuration::ZERO);
//! ```
//!
//! Scaling out, a [`FarviewFleet`](farview_core::FarviewFleet) shards
//! tables across many such nodes and fans queries out as parallel
//! per-shard episodes with a client-side merge (scatter–gather); see
//! `farview_core::fleet`. The fleet is **elastic**: nodes can be added,
//! drained or killed at any time behind an epoch-versioned
//! `farview_core::topology` layer, with live shard rebalancing
//! ([`FleetQPair::rebalance`](farview_core::FleetQPair::rebalance))
//! and optional per-table replication for fault-tolerant reads.
//!
//! See `README.md` for the crate map and quickstart, and
//! `docs/ARCHITECTURE.md` for how the paper's Figure-2 datapath maps
//! onto the modules.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub use farview_core as core;
pub use fv_baseline as baseline;
pub use fv_crypto as crypto;
pub use fv_data as data;
pub use fv_mem as mem;
pub use fv_net as net;
pub use fv_pipeline as pipeline;
pub use fv_regex as regex;
pub use fv_sim as sim;
pub use fv_workload as workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use farview_core::{
        Executor, FTable, FarviewCluster, FarviewConfig, FarviewFleet, FaultPlan, FleetQPair,
        FleetQueryOutcome, FleetTable, FvError, NodeHealth, NodeId, Partitioning, PipelineSpec,
        Placement, PlanTarget, QPair, QueryOutcome, QueryPlan, QueryStats, RebalanceReport,
        SelectQuery, ShardMap, Topology,
    };
    pub use fv_baseline::{BaselineKind, CpuEngine};
    pub use fv_data::{Row, Schema, Table, Value};
    pub use fv_sim::{SimDuration, SimTime};
    pub use fv_workload::TableGen;
}
