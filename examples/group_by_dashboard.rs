//! The paper's GROUP BY motivation (§1): "a query of the form
//! `SELECT T.a, COUNT(*) FROM T GROUP BY T.a` will usually return only a
//! handful of tuples, but it still requires reading the entire table."
//!
//! With the aggregation offloaded, only the aggregated groups ever cross
//! the network — a dashboard refresh touches megabytes of buffer pool
//! but receives bytes.
//!
//! ```text
//! cargo run --example group_by_dashboard
//! ```

use farview::prelude::*;
use farview_core::{AggFunc, AggSpec};

fn main() {
    let cluster = FarviewCluster::new(FarviewConfig::default());
    let qp = cluster.connect().expect("region");

    // 4 MB of "orders": c0 = region id (24 regions), c1 = order value
    // (bounded so the sums read like money, not entropy).
    let table = TableGen::paper_default(4 << 20)
        .seed(11)
        .distinct_column(0, 24)
        .distinct_column(1, 10_000)
        .build();
    let (ft, _) = qp.load_table(&table).expect("pool space");

    // SELECT region, COUNT(*), SUM(value), AVG(value) GROUP BY region
    let outcome = qp
        .group_by(
            &ft,
            vec![0],
            vec![
                AggSpec {
                    col: 1,
                    func: AggFunc::Count,
                },
                AggSpec {
                    col: 1,
                    func: AggFunc::Sum,
                },
                AggSpec {
                    col: 1,
                    func: AggFunc::Avg,
                },
            ],
        )
        .expect("offloaded aggregation");

    println!(
        "scanned {} rows in disaggregated memory, received {} result rows",
        outcome.stats.tuples_in,
        outcome.row_count()
    );
    println!(
        "response time {}   bytes from memory {}   bytes on wire {}",
        outcome.stats.response_time, outcome.stats.bytes_from_memory, outcome.stats.bytes_on_wire
    );
    let reduction = outcome.stats.bytes_from_memory as f64 / outcome.stats.result_bytes as f64;
    println!("network data reduction: {reduction:.0}x");
    assert!(reduction > 1000.0, "aggregation must collapse the transfer");

    println!("\nregion  count      sum             avg");
    let mut rows: Vec<_> = outcome.iter_rows().collect();
    rows.sort_by_key(|r| r.value(0).as_u64());
    for row in rows.iter().take(8) {
        println!(
            "{:>6}  {:>5}  {:>14}  {:>14.1}",
            row.value(0).as_u64(),
            row.value(1).as_u64(),
            row.value(2).as_u64(),
            row.value(3).as_f64()
        );
    }
    println!("... ({} regions total)", rows.len());
}
