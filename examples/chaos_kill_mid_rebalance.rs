//! Chaos harness walkthrough: kill a node mid-rebalance and watch the
//! epoch flip roll back cleanly while the old handle keeps serving.
//!
//! A [`FaultPlan`] attached through `FarviewFleet::degrade_node` fully
//! partitions the node the rebalancer is about to write new shard
//! images to. The flip fails with a clean typed error, every new
//! allocation is rolled back, and the old epoch stays authoritative —
//! byte-identically. Healing the link lets the retried flip complete.
//!
//! ```text
//! cargo run --example chaos_kill_mid_rebalance
//! ```

use farview::prelude::*;
use fv_workload::TableGen;

fn main() {
    let table = TableGen::paper_default(2 << 20).seed(17).build();

    // Two healthy nodes, one table at r = 1 (the rebalance itself is
    // the thing under test — replication is not what saves us here).
    let fleet = FarviewFleet::new(2, FarviewConfig::default());
    let qp = fleet.connect().expect("a region on every node");
    let (ft, _) = qp
        .load_table(&table, Partitioning::RowRange)
        .expect("buffer pool space");
    let reference = qp.table_read(&ft).expect("scan").merged;
    assert_eq!(reference.payload, table.bytes());

    // Grow the roster; the new node is where the flip will write.
    let target = fleet.add_node();
    let pages_before = fleet.free_pages();

    // Chaos: fully partition the new node's link *before* the flip.
    // The seeded plan makes the failure exactly replayable.
    fleet
        .degrade_node(target, FaultPlan::none().with_seed(7).partitioned())
        .expect("target is in the roster");
    let err = qp.rebalance(&ft).expect_err("the flip cannot finish");
    println!("mid-rebalance kill of {target}: typed error \"{err}\"");

    // Rolled back, not wedged: no leaked pages, and the old epoch
    // still answers byte-identically.
    assert_eq!(fleet.free_pages(), pages_before, "allocations rolled back");
    let during = qp.table_read(&ft).expect("old-epoch scan").merged;
    assert_eq!(
        during.payload, reference.payload,
        "old handle keeps serving"
    );
    println!(
        "old epoch {} still serves byte-identical results ({})",
        ft.epoch(),
        during.stats.response_time,
    );

    // Heal the link; the retried flip completes and lands the rows on
    // the (formerly dead) third node.
    fleet.heal_node(target).expect("heal");
    let (new_ft, report) = qp.rebalance(&ft).expect("retried flip completes");
    let after = qp.table_read(&new_ft).expect("new-epoch scan").merged;
    assert_eq!(after.payload, reference.payload, "flip is invisible");
    println!(
        "healed {target}: epoch {} after moving {} rows in {}; scan {}",
        new_ft.epoch(),
        report.moved_rows,
        report.total_time(),
        after.stats.response_time,
    );

    qp.free_table(ft).expect("retire the old epoch");
    qp.free_table(new_ft).expect("free");
}
