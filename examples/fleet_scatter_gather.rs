//! Scatter–gather across a Farview fleet: shard one table over four
//! nodes, fan a query out as parallel per-shard episodes, and merge the
//! partial results client-side.
//!
//! ```text
//! cargo run --example fleet_scatter_gather
//! ```

use farview::prelude::*;
use farview_core::AggFunc;
use fv_pipeline::AggSpec;
use fv_workload::TableGen;

fn main() {
    // An 8 MB table: 8 × 8-byte attributes, 32 groups in column 0.
    let table = TableGen::paper_default(8 << 20)
        .seed(7)
        .distinct_column(0, 32)
        .build();

    // The single-node reference the fleet must agree with.
    let single = FarviewCluster::new(FarviewConfig::default());
    let sqp = single.connect().expect("region");
    let (sft, _) = sqp.load_table(&table).expect("space");
    let aggs = vec![AggSpec {
        col: 2,
        func: AggFunc::Sum,
    }];
    let reference = sqp.group_by(&sft, vec![0], aggs.clone()).expect("query");

    // A four-node fleet. `connect` binds one queue pair per node;
    // `load_table` scatters rows to their owning shards — here by
    // contiguous row ranges, which keeps merged results byte-identical
    // to the single node.
    let fleet = FarviewFleet::new(4, FarviewConfig::default());
    let qp = fleet.connect().expect("a region on every node");
    let (ft, write_time) = qp
        .load_table(&table, Partitioning::RowRange)
        .expect("buffer pool space on every shard");
    println!(
        "scattered {} rows over {} shards in {write_time} (rows/shard: {:?})",
        ft.row_count(),
        fleet.node_count(),
        ft.rows_per_shard(),
    );

    // GROUP BY fans out as four parallel episodes; each shard computes
    // partial aggregates and the client re-aggregates them.
    let out = qp.group_by(&ft, vec![0], aggs).expect("fleet query");
    assert_eq!(
        out.merged.payload, reference.payload,
        "fleet merge must reproduce the single node byte-for-byte"
    );
    println!(
        "group-by over the fleet: {} groups in {} (merge {})",
        out.merged.row_count(),
        out.merged.stats.response_time,
        out.merge_time,
    );
    for (i, s) in out.per_shard.iter().enumerate() {
        println!(
            "  shard {i}: {:>8} tuples in, {:>3} groups flushed, {}",
            s.tuples_in, s.groups_flushed, s.response_time
        );
    }

    let speedup = reference.stats.response_time.as_nanos() as f64
        / out.merged.stats.response_time.as_nanos() as f64;
    println!(
        "single node: {}, 4-node fleet: {} -> {speedup:.2}x",
        reference.stats.response_time, out.merged.stats.response_time
    );
    assert!(speedup > 1.5, "scatter-gather must pay off on 8 MB");

    // Hash partitioning co-locates equal keys instead: every group is
    // computed whole on its owning shard (no cross-shard partials), at
    // the price of global row order.
    let (hashed, _) = qp
        .load_table(&table, Partitioning::KeyHash(0))
        .expect("space");
    let hout = qp.distinct(&hashed, vec![0]).expect("fleet distinct");
    println!(
        "hash-partitioned DISTINCT: {} keys, shards held {:?} rows",
        hout.merged.row_count(),
        hashed.rows_per_shard(),
    );
    assert_eq!(hout.merged.row_count(), 32);
}
