//! Quickstart: bring up a Farview node, put a table in the disaggregated
//! buffer pool, and offload a selection.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use farview::prelude::*;
use fv_workload::SELECTIVITY_PIVOT;

fn main() {
    // A Farview node with the paper's evaluated configuration: two DRAM
    // channels, six dynamic regions, 1 kB packets (§6.1).
    let cluster = FarviewCluster::new(FarviewConfig::default());

    // openConnection(): binds a queue pair to a free dynamic region.
    let qp = cluster.connect().expect("a dynamic region is free");

    // Build a 1 MB table (8 × 8-byte attributes, §6.2) where column 0 is
    // calibrated so `c0 < SELECTIVITY_PIVOT` selects 10 % of the rows.
    let table = TableGen::paper_default(1 << 20)
        .seed(42)
        .selectivity_column(0, 0.10)
        .build();

    // allocTableMem() + tableWrite(): populate the remote buffer pool.
    let (ft, write_time) = qp.load_table(&table).expect("buffer pool space");
    println!(
        "loaded {} rows ({} KiB) into disaggregated memory in {write_time}",
        ft.row_count(),
        ft.byte_len() / 1024,
    );

    // A plain remote read (the non-offloaded path).
    let read = qp.table_read(&ft).expect("tableRead");
    println!(
        "tableRead:   {:>9} rows back in {} ({} packets)",
        read.row_count(),
        read.stats.response_time,
        read.stats.packets
    );

    // The same data with the selection pushed down: only matching tuples
    // ever cross the network.
    let query = SelectQuery::all_columns().and_lt(0, SELECTIVITY_PIVOT);
    let sel = qp.select(&ft, &query).expect("offloaded selection");
    println!(
        "select 10%:  {:>9} rows back in {} ({} packets)",
        sel.row_count(),
        sel.stats.response_time,
        sel.stats.packets
    );

    let speedup =
        read.stats.response_time.as_nanos() as f64 / sel.stats.response_time.as_nanos() as f64;
    println!("pushing the filter into memory was {speedup:.1}x faster");
    assert!(speedup > 1.5, "selection push-down must pay off");

    // Decode a couple of result rows through the schema.
    for row in sel.iter_rows().take(3) {
        println!("  row: c0={} c1={}", row.value(0), row.value(1));
    }
}
