//! Cypherbase-style confidential buffer pool (§5.5): tables rest
//! *encrypted* in disaggregated memory; the smart memory decrypts on the
//! data path, applies the query, and returns plaintext results — the
//! host of the memory node never sees cleartext at rest.
//!
//! ```text
//! cargo run --example encrypted_buffer_pool
//! ```

use farview::prelude::*;
use farview_core::{CryptoSpec, PipelineSpec, PredicateExpr};
use fv_workload::{encrypt_table, SELECTIVITY_PIVOT};

fn main() {
    let key = CryptoSpec {
        key: *b"farview-demo-key",
        iv: [0xA5; 16],
    };

    let cluster = FarviewCluster::new(FarviewConfig::default());
    let qp = cluster.connect().expect("region");

    // Encrypt the table image before it ever leaves the compute node.
    let plain = TableGen::paper_default(1 << 20)
        .seed(99)
        .selectivity_column(0, 0.05)
        .build();
    let encrypted = encrypt_table(&plain, &key.key, &key.iv);
    assert_ne!(plain.bytes(), encrypted.bytes());
    let (ft, _) = qp.load_table(&encrypted).expect("pool space");

    // Whoever reads the raw buffer pool sees ciphertext.
    let raw = qp.table_read(&ft).expect("raw read");
    assert_ne!(raw.payload, plain.bytes());
    println!("raw read returns ciphertext ({} bytes)", raw.payload.len());

    // The trusted pipeline decrypts *inside* the smart memory and applies
    // the selection to the cleartext stream — Figure 4's "regular
    // expression matching on encrypted strings requires decryption early
    // in the pipeline" composition, here with a predicate.
    let spec = PipelineSpec::passthrough()
        .decrypt(key.clone())
        .filter(PredicateExpr::lt(0, SELECTIVITY_PIVOT));
    let out = qp.far_view(&ft, &spec).expect("decrypt+filter");
    println!(
        "decrypt+filter: {} of {} rows in {} (decryption at line rate, §6.7)",
        out.row_count(),
        plain.row_count(),
        out.stats.response_time
    );

    // Verify against filtering the plaintext directly.
    let expected = fv_baseline::CpuEngine::new(fv_baseline::BaselineKind::Lcpu).select(
        &plain,
        &PredicateExpr::lt(0, SELECTIVITY_PIVOT),
        None,
    );
    assert_eq!(
        out.payload, expected.payload,
        "decrypted results must match"
    );

    // Decryption is free on the FPGA datapath: compare against the plain
    // read of the same size.
    let plain_table = qp.load_table(&plain).expect("pool space");
    let plain_read = qp.table_read(&plain_table.0).expect("read");
    let penalty = out.stats.response_time.as_nanos() as f64
        / plain_read.stats.response_time.as_nanos() as f64;
    println!("decrypting overhead vs plain read of same size: {penalty:.3}x");
}
