//! Star-schema join offload — the paper's §7 extension, implemented:
//! "performing joins against small tables in the memory by reading the
//! small table into the FPGA and matching the tuples read from memory
//! against it."
//!
//! A fact table lives in the disaggregated buffer pool; a small dimension
//! table ships with the request, is loaded into the region's on-chip
//! memory, and the fact stream is probed against it at line rate. Only
//! joined (and optionally filtered) rows cross the network.
//!
//! ```text
//! cargo run --example star_join
//! ```

use farview::prelude::*;
use farview_core::{JoinSmallSpec, PipelineSpec, PredicateExpr};
use fv_data::{Schema, TableBuilder, Value};
use fv_workload::ColMode;

fn main() {
    let cluster = FarviewCluster::new(FarviewConfig::default());
    let qp = cluster.connect().expect("region");

    // Fact table: 64 K sales rows — c0 = store id (64 stores),
    // c1 = amount, c2..c7 payload.
    let facts = TableGen::new(8, 65_536)
        .seed(21)
        .mode(0, ColMode::Distinct(64))
        .mode(1, ColMode::Distinct(500))
        .build();
    let (ft, _) = qp.load_table(&facts).expect("pool space");

    // Dimension table: 8 "flagship" stores with their region codes.
    let dim_schema = Schema::uniform_u64(2);
    let mut dim = TableBuilder::new(dim_schema);
    for store in [3u64, 7, 11, 19, 23, 31, 47, 63] {
        dim.push_values(vec![Value::U64(store), Value::U64(store % 4)]);
    }
    let dim = dim.build();

    // Offload: filter high-value sales, then join against the flagship
    // dimension — both inside the disaggregated memory.
    let spec = PipelineSpec::passthrough()
        .filter(PredicateExpr::gt(1, 400u64))
        .join_small(JoinSmallSpec::new(0, &dim, 0));
    let out = qp.far_view(&ft, &spec).expect("offloaded star join");

    println!(
        "fact rows scanned: {}   joined rows returned: {}",
        out.stats.tuples_in,
        out.row_count()
    );
    println!(
        "response time {}   bytes on wire {} (of a {} byte fact table)",
        out.stats.response_time,
        out.stats.bytes_on_wire,
        ft.byte_len()
    );
    println!(
        "output schema: {:?}",
        out.schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
    );

    // Cross-check against the CPU engine (filter then join).
    let filtered =
        CpuEngine::new(BaselineKind::Lcpu).select(&facts, &PredicateExpr::gt(1, 400u64), None);
    let filtered_table = fv_data::Table::from_bytes(facts.schema().clone(), filtered.payload);
    let cpu = CpuEngine::new(BaselineKind::Lcpu).join_small(&filtered_table, 0, &dim, 0);
    assert_eq!(out.payload, cpu.payload, "engines must agree");
    println!(
        "verified against the software join ({} rows)",
        cpu.row_count()
    );

    let reduction = ft.byte_len() as f64 / out.stats.bytes_on_wire as f64;
    println!("network reduction from offloading filter+join: {reduction:.1}x");
}
