//! The query planner's `explain()` output, and the optimizer actually
//! winning: lower a projection onto the unified `QueryPlan` IR, watch
//! the rule-based optimizer choose smart addressing from the calibrated
//! cost model, and verify the optimized plan is byte-identical and
//! faster when executed.
//!
//! ```text
//! cargo run --example planner_explain
//! ```
//!
//! (`just explain` dumps the same report for every standard figure
//! query.)

use farview::prelude::*;
use farview_core::PredicateExpr;

fn main() {
    // Figure 7's setting: 512 B tuples (64 × 8-byte columns), of which a
    // query wants three contiguous columns.
    let table = fv_workload::TableGen::new(64, 8192).seed(7).build();
    let spec = PipelineSpec::passthrough().project(vec![8, 9, 10]);

    // Lower the spec onto the planner IR and explain it: the cost model
    // estimates that gathering 24 projected bytes per tuple beats
    // streaming the whole 512 B row, so the smart-addressing rule fires.
    let plan = QueryPlan::from_spec(&spec, PlanTarget::Single);
    let explain = plan
        .explain(table.schema(), table.row_count() as u64)
        .expect("explain");
    println!("{explain}");

    // A logical plan written in SQL-ish order — filter *after* the
    // projection, over projected column indices — normalizes back onto
    // the one physical pipeline order.
    let logical = QueryPlan::new(PlanTarget::Single)
        .project(vec![8, 9, 10])
        .filter(PredicateExpr::lt(0, 1u64 << 62)); // projected c0 = base c8
    let explain = logical
        .explain(table.schema(), table.row_count() as u64)
        .expect("explain");
    println!("{explain}");

    // Now execute both the naive and the optimized projection plan and
    // compare.
    let cluster = FarviewCluster::new(FarviewConfig::default());
    let qp = cluster.connect().expect("a dynamic region is free");
    let (ft, _) = qp.load_table(&table).expect("buffer pool space");

    let naive = qp.far_view(&ft, &spec).expect("naive plan");
    let optimized = Executor::run_plan(&qp, &ft, &plan).expect("optimized plan");
    assert_eq!(
        optimized.payload, naive.payload,
        "optimization must be invisible in the bytes"
    );
    println!(
        "measured: naive {} -> optimized {}  ({} rows, byte-identical)",
        naive.stats.response_time,
        optimized.stats.response_time,
        optimized.row_count(),
    );
}
