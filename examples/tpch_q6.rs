//! A TPC-H Q6-shaped scan: the paper's motivating example for operator
//! push-down ("queries with high selectivity (e.g., TPC-H Q6) ... the
//! query reads a large amount of data from the buffer pool just to
//! discard most of it", §1; "in TPC-H Q6, only 2% of the data is finally
//! selected", §5.3).
//!
//! We build a lineitem-like table, run the Q6 predicate trio on Farview
//! and on the LCPU/RCPU baselines, and compare.
//!
//! ```text
//! cargo run --example tpch_q6
//! ```

use farview::prelude::*;
use farview_core::PredicateExpr;
use fv_baseline::BaselineKind;
use fv_workload::{ColMode, TableGen};

// Column layout of our lineitem stand-in (all 8-byte attributes):
//   c0 = l_shipdate   (days since epoch)
//   c1 = l_discount   (hundredths)
//   c2 = l_quantity
//   c3 = l_extendedprice
const SHIPDATE: usize = 0;
const DISCOUNT: usize = 1;
const QUANTITY: usize = 2;

fn main() {
    let cluster = FarviewCluster::new(FarviewConfig::default());
    let qp = cluster.connect().expect("region");

    // 2 MB of lineitem rows with Q6-like value distributions.
    let table = TableGen::new(8, 32_768)
        .seed(7)
        .mode(SHIPDATE, ColMode::Distinct(2557)) // ~7 years of ship dates
        .mode(DISCOUNT, ColMode::Distinct(11)) // discounts 0.00..0.10
        .mode(QUANTITY, ColMode::Distinct(50))
        .build();
    let (ft, _) = qp.load_table(&table).expect("pool space");

    // Q6: shipdate in [365, 730) AND discount in [5, 7] AND quantity < 24.
    let pred = PredicateExpr::ge_like(SHIPDATE, 365)
        .and(PredicateExpr::lt(SHIPDATE, 730u64))
        .and(PredicateExpr::ge_like(DISCOUNT, 5))
        .and(PredicateExpr::lt(DISCOUNT, 8u64))
        .and(PredicateExpr::lt(QUANTITY, 24u64));

    let spec = farview_core::PipelineSpec::passthrough()
        .filter(pred.clone())
        .vectorized();
    let fv = qp.far_view(&ft, &spec).expect("offloaded Q6 scan");

    let lcpu = CpuEngine::new(BaselineKind::Lcpu).select(&table, &pred, None);
    let rcpu = CpuEngine::new(BaselineKind::Rcpu).select(&table, &pred, None);
    assert_eq!(fv.payload, lcpu.payload, "engines must agree");

    let selectivity = fv.row_count() as f64 / table.row_count() as f64 * 100.0;
    println!(
        "Q6-like scan over {} rows ({} KiB):",
        table.row_count(),
        ft.byte_len() / 1024
    );
    println!(
        "  selectivity: {selectivity:.1}% ({} rows survive)",
        fv.row_count()
    );
    println!(
        "  Farview (offloaded, vectorized): {}",
        fv.stats.response_time
    );
    println!("  LCPU    (local buffer cache):    {}", lcpu.time);
    println!("  RCPU    (remote, two-sided):     {}", rcpu.time);
    println!(
        "  bytes over the network: {} (vs {} for a raw read)",
        fv.stats.bytes_on_wire,
        ft.byte_len()
    );
}

/// `col >= v` helper (the predicate language has Ge via Not(Lt)).
trait Q6Ext {
    fn ge_like(col: usize, v: u64) -> PredicateExpr;
}

impl Q6Ext for PredicateExpr {
    fn ge_like(col: usize, v: u64) -> PredicateExpr {
        PredicateExpr::Not(Box::new(PredicateExpr::lt(col, v)))
    }
}
