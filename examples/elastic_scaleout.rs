//! Elastic scale-out: grow a fleet under load, watch the live
//! rebalancer move shards onto the new nodes, then kill a node and keep
//! answering from replicas.
//!
//! ```text
//! cargo run --example elastic_scaleout
//! ```

use farview::prelude::*;
use fv_workload::TableGen;

fn main() {
    // A 4 MB table, loaded with two replicas per shard so a node loss
    // later is survivable.
    let table = TableGen::paper_default(4 << 20).seed(13).build();

    // Start small: two nodes, epoch 0.
    let fleet = FarviewFleet::new(2, FarviewConfig::default());
    let qp = fleet.connect().expect("a region on every node");
    let (mut ft, _) = qp
        .load_table_replicated(&table, Partitioning::RowRange, 2)
        .expect("buffer pool space for two replicas per shard");
    let reference = qp.table_read(&ft).expect("scan").merged;
    assert_eq!(reference.payload, table.bytes());
    println!(
        "epoch {}: {} nodes, rows/shard {:?}, scan {}",
        ft.epoch(),
        fleet.node_count(),
        ft.rows_per_shard(),
        reference.stats.response_time,
    );

    // Grow 2 -> 4 -> 8. Each `add_node` bumps the topology epoch;
    // `rebalance` computes the minimal shard-move plan against the new
    // epoch, streams exactly the moved row ranges off the source nodes
    // as doorbell-batched copy episodes, and flips the table to a new
    // placement — while the old handle keeps serving byte-identical
    // results until we retire it.
    for target in [4usize, 8] {
        while fleet.node_count() < target {
            fleet.add_node();
        }
        let (new_ft, report) = qp.rebalance(&ft).expect("live rebalance");
        // The old epoch is still queryable mid-flight:
        let during = qp.table_read(&ft).expect("old-epoch scan").merged;
        assert_eq!(during.payload, reference.payload);
        qp.free_table(std::mem::replace(&mut ft, new_ft))
            .expect("retire the old epoch");

        let scan = qp.table_read(&ft).expect("scan").merged;
        assert_eq!(scan.payload, reference.payload, "rebalance is invisible");
        println!(
            "epoch {}: {} nodes after moving {} rows ({} flows, {} bytes) in {} \
             [copy {} + shuffle {} + write {}]; scan now {}",
            ft.epoch(),
            fleet.node_count(),
            report.moved_rows,
            report.moves,
            report.moved_bytes,
            report.total_time(),
            report.copy_time,
            report.shuffle_time,
            report.write_time,
            scan.stats.response_time,
        );
    }

    // Kill a node outright. Every shard has a second replica, so reads
    // fall back transparently — same bytes, no operator intervention.
    let victim = fleet.node_ids()[3];
    fleet.remove_node(victim).expect("kill");
    let survived = qp.table_read(&ft).expect("post-kill scan").merged;
    assert_eq!(survived.payload, reference.payload);
    println!(
        "killed {victim}: {} nodes left, scan still byte-identical ({})",
        fleet.node_count(),
        survived.stats.response_time,
    );

    qp.free_table(ft).expect("free");
}
