//! Six tenants sharing one smart disaggregated memory (§6.8 / Figure 12):
//! each client gets its own dynamic region and queue pair; the DRR
//! arbiters fair-share the wire and the DRAM channels.
//!
//! Table *construction* runs on real host threads (crossbeam scope); the
//! six queries then execute concurrently inside one simulation episode.
//!
//! ```text
//! cargo run --example multi_tenant
//! ```

use farview::prelude::*;
use farview_core::PipelineSpec;
use fv_baseline::BaselineKind;
use fv_data::Table;

const TENANTS: usize = 6;
const TABLE_BYTES: u64 = 1 << 20;

fn main() {
    let cluster = FarviewCluster::new(FarviewConfig::default());

    // Generate each tenant's table on its own thread.
    let mut tables: Vec<Option<Table>> = (0..TENANTS).map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (i, slot) in tables.iter_mut().enumerate() {
            scope.spawn(move |_| {
                *slot = Some(
                    TableGen::paper_default(TABLE_BYTES)
                        .seed(1000 + i as u64)
                        .distinct_column(0, 32)
                        .build(),
                );
            });
        }
    })
    .expect("generator threads");
    let tables: Vec<Table> = tables.into_iter().map(|t| t.expect("built")).collect();

    // One connection (dynamic region) per tenant.
    let qps: Vec<_> = (0..TENANTS)
        .map(|_| cluster.connect().expect("enough dynamic regions"))
        .collect();
    let fts: Vec<_> = qps
        .iter()
        .zip(&tables)
        .map(|(qp, t)| qp.load_table(t).expect("pool space").0)
        .collect();

    // All six run DISTINCT at the same instant.
    let spec = PipelineSpec::passthrough().distinct(vec![0]);
    let requests = qps
        .iter()
        .zip(&fts)
        .map(|(qp, ft)| (qp, ft, spec.clone()))
        .collect();
    let outcomes = cluster.run_concurrent(requests).expect("six tenants");

    println!("six concurrent DISTINCT queries over {TABLE_BYTES} B each:");
    let mut worst = fv_sim::SimDuration::ZERO;
    for (i, o) in outcomes.iter().enumerate() {
        println!(
            "  tenant {i}: {} rows in {}",
            o.row_count(),
            o.stats.response_time
        );
        worst = worst.max(o.stats.response_time);
    }
    println!("all tenants done after {worst}");

    // Fairness check: no tenant should lag far behind the pack.
    let best = outcomes
        .iter()
        .map(|o| o.stats.response_time)
        .min()
        .expect("six outcomes");
    let skew = worst.as_nanos() as f64 / best.as_nanos() as f64;
    println!("fair-sharing skew (worst/best): {skew:.2}x");
    assert!(
        skew < 1.3,
        "DRR must keep tenants within ~30% of each other"
    );

    // The CPU comparison: six MPI-style processes on one socket contend
    // for DRAM and caches instead of being spatially isolated.
    let lcpu = CpuEngine::with_processes(BaselineKind::Lcpu, TENANTS).distinct(&tables[0], &[0]);
    println!("LCPU six-process equivalent: {}", lcpu.time);
}
