# Local mirror of .github/workflows/ci.yml (the build environment has no
# CI runner; `just ci` is the full gate, `just verify` the tier-1 check).

# Tier-1 verification: what the project gates on.
verify:
    cargo build --release
    cargo test -q

# Rustdoc with warnings denied.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Formatting gate.
fmt-check:
    cargo fmt --check

# Lint gate: warnings are errors.
clippy:
    cargo clippy --workspace -- -D warnings

# Everything CI runs.
ci: verify doc fmt-check clippy

# Reproduce every table/figure of the paper plus the scale-out sweep.
figures:
    cargo run -q --release -p fv-bench --bin figures all

# Every custom experiment (scaleout/qdepth/plan_ablation/elasticity/
# hotpath) at its smallest config — the CI gate that keeps the harness
# from rotting.
bench-smoke:
    cargo run -q --release -p fv-bench --bin figures smoke

# Wall-clock microbench of the host hot path: vectorized block datapath
# vs the per-tuple reference, parallel vs serial fleet scatter, and the
# replica-dedup win over the seed model. Rewrites BENCH_PR5.json.
bench-hotpath:
    cargo run -q --release -p fv-bench --bin figures hotpath

# Dump optimizer explain() output for the standard figure queries.
explain:
    cargo run -q --release -p fv-bench --bin figures explain
