# Local mirror of .github/workflows/ci.yml (the build environment has no
# CI runner; `just ci` is the full gate, `just verify` the tier-1 check).

# Tier-1 verification: what the project gates on.
verify:
    cargo build --release
    cargo test -q

# Rustdoc with warnings denied.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Formatting gate.
fmt-check:
    cargo fmt --check

# Lint gate: warnings are errors.
clippy:
    cargo clippy --workspace -- -D warnings --force-warn clippy::unwrap_used --force-warn clippy::expect_used

# Static analysis gate: the panic-freedom ratchet against
# analyze/baseline.toml, the typed-error audit, and the IR verifier
# smoke corpus. Improvements auto-tighten the baseline (commit it).
analyze:
    cargo run -q --release -p fv-analyze --bin fv-analyze

# Everything CI runs.
ci: verify doc fmt-check clippy analyze

# Reproduce every table/figure of the paper plus the scale-out sweep.
figures:
    cargo run -q --release -p fv-bench --bin figures all

# Every custom experiment (scaleout/qdepth/plan_ablation/elasticity/
# hotpath/chaos) at its smallest config — the CI gate that keeps the
# harness from rotting.
bench-smoke:
    cargo run -q --release -p fv-bench --bin figures smoke

# Wall-clock microbench of the host hot path: vectorized block datapath
# vs the per-tuple reference, parallel vs serial fleet scatter, and the
# replica-dedup win over the seed model. Rewrites BENCH_PR8.json.
bench-hotpath:
    cargo run -q --release -p fv-bench --bin figures hotpath

# Wall-clock microbench of the columnar staging path: cold-query
# restage on a row image vs a zero-copy column-image open, and each
# operator on row-block vs slice-native input. Rewrites BENCH_PR9.json.
bench-coldpath:
    cargo run -q --release -p fv-bench --bin figures coldpath

# Tail latency per fault class under deterministic fault injection.
# Rewrites BENCH_PR6.json.
bench-chaos:
    cargo run -q --release -p fv-bench --bin figures chaos

# Graceful degradation past saturation: the multi-tenant serving sweep
# (admission control, weighted DRR, shed ladder, bounded retry).
# Rewrites BENCH_PR10.json.
bench-overload:
    cargo run -q --release -p fv-bench --bin figures overload

# The chaos suite over its fixed seed matrix (64 composed schedules +
# every fault-class property), then one randomized seed — printed so a
# failure can be replayed with `CHAOS_SEED=<n> just chaos`.
chaos:
    cargo test -q --test chaos_props --test topology_props
    seed=${CHAOS_SEED:-$(date +%s)}; echo "randomized CHAOS_SEED=$seed"; CHAOS_SEED=$seed cargo test -q --test chaos_props chaos_scenario_replays_at_env_seed

# Dump optimizer explain() output for the standard figure queries.
explain:
    cargo run -q --release -p fv-bench --bin figures explain
